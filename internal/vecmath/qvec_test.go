package vecmath

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestQuantizeRoundTrip(t *testing.T) {
	v := []float64{0.5, -0.25, 0.125, -1, 1, 0.001}
	q := Quantize(v)
	if q.Scale <= 0 {
		t.Fatalf("scale = %v, want positive", q.Scale)
	}
	got := Dequantize(q, nil)
	for i := range v {
		if err := math.Abs(got[i] - v[i]); err > q.Scale/2+1e-12 {
			t.Errorf("component %d: %v -> %v, error %v exceeds scale/2 %v", i, v[i], got[i], err, q.Scale/2)
		}
	}
	// The max-magnitude component maps exactly to ±QMax.
	if q.Data[3] != -QMax || q.Data[4] != QMax {
		t.Errorf("extremes quantized to %d,%d, want ±%d", q.Data[3], q.Data[4], QMax)
	}
}

func TestQuantizeDegenerate(t *testing.T) {
	for name, v := range map[string][]float64{
		"zero":      {0, 0, 0, 0},
		"subnormal": {5e-324, -5e-324, 0, 0},
		"nan":       {1, math.NaN(), 2, 3},
		"inf":       {1, math.Inf(1), 2, 3},
		"empty":     {},
	} {
		q := Quantize(v)
		if q.Scale != 0 {
			t.Errorf("%s: scale = %v, want 0", name, q.Scale)
		}
		for i, b := range q.Data {
			if b != 0 {
				t.Errorf("%s: data[%d] = %d, want 0", name, i, b)
			}
		}
		d := Dequantize(q, nil)
		for i, x := range d {
			if x != 0 {
				t.Errorf("%s: dequantized[%d] = %v, want 0", name, i, x)
			}
		}
	}
}

// TestDotQ8ApproximatesDot pins the kernel's accuracy: on unit-scale random
// vectors the quantized dot must track the float dot within the combined
// rounding budget.
func TestDotQ8ApproximatesDot(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		dims := 1 + rng.IntN(64)
		a := make([]float64, dims)
		b := make([]float64, dims)
		for i := range a {
			a[i] = rng.Float64()*2 - 1
			b[i] = rng.Float64()*2 - 1
		}
		qa, qb := Quantize(a), Quantize(b)
		got := float64(DotQ8(qa.Data, qb.Data)) * qa.Scale * qb.Scale
		want := Dot(a, b)
		// Per-component error ≤ scale/2 each side; cross terms bound the
		// total by dims·(|a|∞·sb/2 + |b|∞·sa/2 + sa·sb/4).
		bound := float64(dims) * (qa.Scale*QMax*qb.Scale/2 + qb.Scale*QMax*qa.Scale/2 + qa.Scale*qb.Scale/4)
		if math.Abs(got-want) > bound+1e-12 {
			t.Fatalf("trial %d dims %d: DotQ8 = %v, Dot = %v, |err| %v > bound %v",
				trial, dims, got, want, math.Abs(got-want), bound)
		}
	}
}

func TestDotQ8MatchesNaiveBlocking(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for _, dims := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 40, 63} {
		a := make([]int8, dims)
		b := make([]int8, dims)
		for i := range a {
			a[i] = int8(rng.IntN(255) - 127)
			b[i] = int8(rng.IntN(255) - 127)
		}
		var want int32
		for i := range a {
			want += int32(a[i]) * int32(b[i])
		}
		if got := DotQ8(a, b); got != want {
			t.Fatalf("dims %d: DotQ8 = %d, naive = %d", dims, got, want)
		}
	}
}

func TestDotQ8PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	DotQ8(make([]int8, 3), make([]int8, 4))
}

func TestDotQ8Batch(t *testing.T) {
	a := []int8{1, -2, 3, -4}
	bs := [][]int8{{1, 1, 1, 1}, nil, {-1, 2, -3, 4}}
	got := DotQ8Batch(a, bs, nil)
	want := []int32{-2, 0, -30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch = %v, want %v", got, want)
		}
	}
}

// TestQ8KernelsAllocationFree pins the warm-path allocation contract: with
// pre-sized scratch, quantize + batch dot run without a single allocation.
func TestQ8KernelsAllocationFree(t *testing.T) {
	v := make([]float64, 40)
	for i := range v {
		v[i] = math.Sin(float64(i))
	}
	q := QVec{Data: make([]int8, 0, 40)}
	bs := make([][]int8, 8)
	for i := range bs {
		bs[i] = Quantize(v).Data
	}
	dst := make([]int32, 0, 8)
	n := testing.AllocsPerRun(100, func() {
		q = QuantizeInto(q, v)
		dst = DotQ8Batch(q.Data, bs, dst)
	})
	if n != 0 {
		t.Fatalf("warm quantize+batch-dot allocates %v per run, want 0", n)
	}
}

// TestCosineNormedEquivalence pins the norm-precompute refactor: CosineNormed
// with cached norms returns bit-identical results to Cosine, and the cached
// form does not allocate.
func TestCosineNormedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 100; trial++ {
		dims := 1 + rng.IntN(32)
		a := make([]float64, dims)
		b := make([]float64, dims)
		for i := range a {
			a[i] = rng.Float64()*2 - 1
			b[i] = rng.Float64()*2 - 1
		}
		na, nb := Norm(a), Norm(b)
		if got, want := CosineNormed(a, b, na, nb), Cosine(a, b); got != want {
			t.Fatalf("CosineNormed = %v, Cosine = %v", got, want)
		}
	}
	zero := make([]float64, 4)
	one := []float64{1, 0, 0, 0}
	if got := CosineNormed(zero, one, 0, 1); got != 0 {
		t.Fatalf("zero-norm CosineNormed = %v, want 0", got)
	}
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	na, nb := Norm(a), Norm(b)
	n := testing.AllocsPerRun(100, func() {
		_ = CosineNormed(a, b, na, nb)
	})
	if n != 0 {
		t.Fatalf("CosineNormed allocates %v per run, want 0", n)
	}
}
