// Package vecmath provides the small set of dense-vector operations used by
// the matrix-factorization model and the similar-video tables.
//
// All operations work on []float64 slices of equal length. Functions that
// combine two vectors panic on length mismatch: a mismatch always indicates a
// programming error (vectors of one model share a single dimensionality), and
// silently truncating would corrupt the model.
package vecmath

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
//
// The inner product x_u · y_i is the interaction term of the paper's
// preference prediction (Eq. 2) and the collaborative-filtering similarity
// between two item vectors (Eq. 9).
//
// The loop is unrolled four wide with independent accumulators: scoring runs
// one Dot per candidate per request, and the serial add chain of the naive
// loop is the bottleneck at the typical factor counts (8–64). Four partial
// sums break the dependency chain; summing them pairwise at the end keeps the
// operation deterministic (same input → same float result), which the golden
// serving test and sim digests rely on.
//
// hotpath: one Dot per candidate per request; must stay allocation-free
func Dot(a, b []float64) float64 {
	checkLen(a, b)
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		bv := b[i : i+4 : i+4] // one bounds check for the group
		s0 += a[i] * bv[0]
		s1 += a[i+1] * bv[1]
		s2 += a[i+2] * bv[2]
		s3 += a[i+3] * bv[3]
	}
	for i := n; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float64) float64 {
	// numcheck: Dot(a, a) is a sum of squares, always >= 0
	return math.Sqrt(Dot(a, a))
}

// Cosine returns the cosine similarity of a and b, or 0 when either vector is
// all-zero (a fresh, untrained vector carries no similarity signal).
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// AXPY computes a += alpha*x in place and returns a.
func AXPY(alpha float64, x, a []float64) []float64 {
	checkLen(a, x)
	for i := range a {
		a[i] += alpha * x[i]
	}
	return a
}

// Scale multiplies a by alpha in place and returns a.
func Scale(alpha float64, a []float64) []float64 {
	for i := range a {
		a[i] *= alpha
	}
	return a
}

// Clone returns a copy of a. A nil input yields a nil output.
func Clone(a []float64) []float64 {
	if a == nil {
		return nil
	}
	c := make([]float64, len(a))
	copy(c, a)
	return c
}

// SGDStep applies one regularized stochastic-gradient step to dst:
//
//	dst += eta * (err*grad - lambda*dst)
//
// which is the update form of Algorithm 1 lines 11–14 (with grad being the
// paired vector for latent factors, or implicitly 1 for biases — see
// BiasStep). dst is modified in place and returned.
func SGDStep(eta, err, lambda float64, dst, grad []float64) []float64 {
	checkLen(dst, grad)
	for i := range dst {
		dst[i] += eta * (err*grad[i] - lambda*dst[i])
	}
	return dst
}

// BiasStep applies the scalar form of the regularized SGD step used for the
// user and item bias terms (Algorithm 1 lines 11–12):
//
//	b + eta*(err - lambda*b)
func BiasStep(eta, err, lambda, b float64) float64 {
	return b + eta*(err-lambda*b)
}

// IsFinite reports whether every element of a is finite (no NaN or ±Inf).
// The online model uses it to detect divergence under hostile learning rates.
func IsFinite(a []float64) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d != %d", len(a), len(b)))
	}
}
