package vecmath

import "math"

// Int8 fixed-point quantization for latent vectors. The serving path stores
// item vectors as QVec — a per-vector scale plus int8 components — which is
// 8× smaller than the float64 form, so a candidate batch's parameters fit in
// cache lines instead of thrashing them. Quantization is symmetric: the scale
// maps the largest-magnitude component to ±127, components are rounded, and
// the inner product is recovered as Σ qa·qb · scaleA·scaleB. For the unit-
// scale vectors online MF produces, the per-dot relative error is well under
// a percent — the eval tier pins the end-to-end recall gap at ≤ 2%.

// QMax is the largest quantized magnitude. The symmetric range [-127, 127]
// deliberately excludes -128 so negation never overflows.
const QMax = 127

// QVec is a quantized vector: v[i] ≈ Scale * float64(Data[i]).
type QVec struct {
	Scale float64
	Data  []int8
}

// Quantize converts v to a fresh QVec.
func Quantize(v []float64) QVec {
	return QuantizeInto(QVec{}, v)
}

// QuantizeInto quantizes v reusing dst's backing array when it has capacity —
// the serving path quantizes the user vector once per request into pooled
// scratch. An all-zero (or non-finite-free subnormal) input yields Scale 0
// and zero data: dequantizing gives back the zero vector, and any dot with it
// is 0, matching the float behaviour of an untrained vector.
//
// hotpath: one user-vector quantization per scored batch, allocation-free warm
func QuantizeInto(dst QVec, v []float64) QVec {
	if cap(dst.Data) < len(v) {
		dst.Data = make([]int8, len(v)) // alloccheck: grow-once; callers pass pooled scratch
	} else {
		dst.Data = dst.Data[:len(v)]
	}
	maxAbs := 0.0
	for _, x := range v {
		if x != x { // numcheck: exact NaN self-comparison, the one float != that is never rounding-sensitive
			maxAbs = math.NaN()
			break
		}
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / QMax
	// Degenerate scales produce nothing representable: a zero vector has
	// scale 0, a subnormal maxAbs can underflow the division, and a NaN/Inf
	// component poisons it. All collapse to the zero QVec.
	if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		clear(dst.Data)
		dst.Scale = 0
		return dst
	}
	inv := 1 / scale
	for i, x := range v {
		q := math.Round(x * inv)
		if q > QMax {
			q = QMax
		} else if q < -QMax {
			q = -QMax
		}
		dst.Data[i] = int8(q)
	}
	dst.Scale = scale
	return dst
}

// Dequantize reconstructs the float vector into dst (reused when it has
// capacity) and returns it.
func Dequantize(q QVec, dst []float64) []float64 {
	if cap(dst) < len(q.Data) {
		dst = make([]float64, len(q.Data)) // alloccheck: grow-once; callers pass pooled scratch
	} else {
		dst = dst[:len(q.Data)]
	}
	for i, b := range q.Data {
		dst[i] = q.Scale * float64(b)
	}
	return dst
}

// DotQ8 returns the integer inner product of two quantized vectors. The
// float dot is recovered by multiplying with both scales. The loop walks both
// slices eight wide through the advancing-reslice idiom (the compiler proves
// all eight indexes in bounds from the loop condition, eliminating per-element
// bounds checks) with four independent int32 accumulator chains: the widened
// int32 products cannot overflow (127² · dims stays far below 2³¹ for any
// realistic factor count), and integer addition is exact, so the result is
// deterministic regardless of blocking.
//
// hotpath: one DotQ8 per candidate on the quantized serving path; must stay allocation-free
func DotQ8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("vecmath: quantized dimension mismatch")
	}
	var s0, s1, s2, s3 int32
	for len(a) >= 8 && len(b) >= 8 {
		s0 += int32(a[0])*int32(b[0]) + int32(a[4])*int32(b[4])
		s1 += int32(a[1])*int32(b[1]) + int32(a[5])*int32(b[5])
		s2 += int32(a[2])*int32(b[2]) + int32(a[6])*int32(b[6])
		s3 += int32(a[3])*int32(b[3]) + int32(a[7])*int32(b[7])
		a = a[8:]
		b = b[8:]
	}
	for i := 0; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// DotQ8Batch scores many quantized vectors against one query in a single
// pass, writing the integer dots into dst (parallel to bs; reused when it has
// capacity). A nil entry in bs yields 0 — the caller's marker for candidates
// that fall back to the float path.
//
// hotpath: the quantized batch kernel scores every candidate per request
func DotQ8Batch(a []int8, bs [][]int8, dst []int32) []int32 {
	if cap(dst) < len(bs) {
		dst = make([]int32, len(bs)) // alloccheck: grow-once; callers pass pooled scratch
	} else {
		dst = dst[:len(bs)]
	}
	for i, b := range bs {
		if b == nil {
			dst[i] = 0
			continue
		}
		dst[i] = DotQ8(a, b)
	}
	return dst
}

// CosineNormed is Cosine with both norms precomputed. Callers that score one
// query against many vectors (the ANN index's exact ranking) compute each
// norm once instead of once per pair; the index caches item norms at insert
// time for exactly this call.
func CosineNormed(a, b []float64, na, nb float64) float64 {
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
