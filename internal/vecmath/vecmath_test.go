package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"ones", []float64{1, 1, 1}, []float64{1, 1, 1}, 3},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"mixed", []float64{1, -2, 3}, []float64{4, 5, -6}, 4 - 10 - 18},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); !almostEq(got, tt.want) {
				t.Errorf("Dot(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// TestDotUnrollAllLengths drives the unrolled Dot through every tail shape
// (0–3 leftover elements) across lengths up to several unroll groups,
// comparing against the naive sequential sum within float tolerance.
func TestDotUnrollAllLengths(t *testing.T) {
	for n := 0; n <= 19; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(i+1) * 0.5
			b[i] = float64(n-i) * -0.25
		}
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); !almostEq(got, want) {
			t.Errorf("Dot length %d = %v, naive sum = %v", n, got, want)
		}
	}
}

// TestDotDeterministic pins the property the golden serving test rests on:
// the unrolled accumulation is a pure function of its inputs — same vectors,
// bit-identical result, every call.
func TestDotDeterministic(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	b := []float64{7, -6, 5, -4, 3, -2, 1}
	first := Dot(a, b)
	for i := 0; i < 100; i++ {
		if got := Dot(a, b); got != first {
			t.Fatalf("call %d returned %v, first call returned %v", i, got, first)
		}
	}
}

// TestDotDoesNotAllocate keeps the innermost scoring kernel off the heap.
func TestDotDoesNotAllocate(t *testing.T) {
	a := make([]float64, 32)
	b := make([]float64, 32)
	for i := range a {
		a[i], b[i] = float64(i), float64(32-i)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		_ = Dot(a, b)
	}); avg != 0 {
		t.Fatalf("Dot allocates %v objects per call, want 0", avg)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); !almostEq(got, 5) {
		t.Errorf("Norm([3 4]) = %v, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %v, want 0", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{2, 0}); !almostEq(got, 1) {
		t.Errorf("Cosine parallel = %v, want 1", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 3}); !almostEq(got, 0) {
		t.Errorf("Cosine orthogonal = %v, want 0", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("Cosine with zero vector = %v, want 0", got)
	}
}

func TestCosineRange(t *testing.T) {
	// Latent-factor vectors live near the unit ball; constrain inputs so the
	// intermediate inner products cannot overflow float64.
	f := func(a, b [8]float64) bool {
		for i := range a {
			a[i] = math.Mod(a[i], 100)
			b[i] = math.Mod(b[i], 100)
		}
		c := Cosine(a[:], b[:])
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	got := AXPY(2, []float64{1, 1, 1}, a)
	want := []float64{3, 4, 5}
	for i := range want {
		if !almostEq(got[i], want[i]) {
			t.Fatalf("AXPY = %v, want %v", got, want)
		}
	}
	if &got[0] != &a[0] {
		t.Error("AXPY must operate in place")
	}
}

func TestScale(t *testing.T) {
	a := []float64{1, -2}
	Scale(-3, a)
	if a[0] != -3 || a[1] != 6 {
		t.Errorf("Scale = %v, want [-3 6]", a)
	}
}

func TestClone(t *testing.T) {
	if Clone(nil) != nil {
		t.Error("Clone(nil) must be nil")
	}
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone must not alias its input")
	}
}

// TestSGDStepMatchesScalarForm checks the vector step against an elementwise
// reference implementation of Algorithm 1's update rule.
func TestSGDStepMatchesScalarForm(t *testing.T) {
	f := func(dst, grad [6]float64) bool {
		const eta, err, lambda = 0.02, 0.7, 0.05
		want := dst
		for i := range want {
			want[i] += eta * (err*grad[i] - lambda*want[i])
		}
		got := SGDStep(eta, err, lambda, Clone(dst[:]), grad[:])
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSGDStepReducesError verifies the defining property of a gradient step:
// for a small enough learning rate, prediction error shrinks.
func TestSGDStepReducesError(t *testing.T) {
	x := []float64{0.1, 0.2, -0.1}
	y := []float64{0.3, -0.2, 0.4}
	const r, lambda, eta = 1.0, 0.01, 0.1
	before := math.Abs(r - Dot(x, y))
	// Mirror the paired update of Algorithm 1: both vectors move using the
	// pre-update value of the other.
	x0 := Clone(x)
	errv := r - Dot(x, y)
	SGDStep(eta, errv, lambda, x, y)
	SGDStep(eta, errv, lambda, y, x0)
	after := math.Abs(r - Dot(x, y))
	if after >= before {
		t.Errorf("error did not decrease: before %v after %v", before, after)
	}
}

func TestBiasStep(t *testing.T) {
	got := BiasStep(0.1, 0.5, 0.2, 1.0)
	want := 1.0 + 0.1*(0.5-0.2*1.0)
	if !almostEq(got, want) {
		t.Errorf("BiasStep = %v, want %v", got, want)
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite([]float64{1, -2, 0}) {
		t.Error("finite vector reported non-finite")
	}
	if IsFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if IsFinite([]float64{math.Inf(1)}) {
		t.Error("+Inf not detected")
	}
}
