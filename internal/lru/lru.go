// Package lru implements a small TTL'd LRU cache — the "cache technique" of
// §5.1: because fields grouping routes all pairs touching a given video to
// the same ItemPairSim worker, that worker can cache the video's vector and
// type locally and skip most key-value store reads. Entries expire after a
// TTL so the cache tracks the continuously retrained vectors closely enough
// (a pair similarity computed from a vector a second stale is well within
// the model's own noise).
package lru

import (
	"container/list"
	"fmt"
	"time"
)

// Cache is a fixed-capacity LRU with per-entry TTL.
//
// It is NOT safe for concurrent use: the intended owner is a single bolt
// task (one goroutine), per Storm's execution model. Give each task its own
// Cache.
type Cache[K comparable, V any] struct {
	capacity int
	ttl      time.Duration
	clock    func() time.Time

	order *list.List // front = most recent
	items map[K]*list.Element

	hits, misses, evictions uint64
}

type entry[K comparable, V any] struct {
	key     K
	value   V
	expires time.Time
}

// New returns a cache holding at most capacity entries, each valid for ttl.
// A non-positive ttl disables expiry. It panics on non-positive capacity —
// an accidental zero capacity would silently disable the optimization.
func New[K comparable, V any](capacity int, ttl time.Duration) *Cache[K, V] {
	if capacity <= 0 {
		panic(fmt.Sprintf("lru: capacity must be positive, got %d", capacity))
	}
	return &Cache[K, V]{
		capacity: capacity,
		ttl:      ttl,
		// clockcheck: production default; tests and the sim inject via SetClock.
		clock: time.Now,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// SetClock installs a time source (tests).
func (c *Cache[K, V]) SetClock(fn func() time.Time) { c.clock = fn }

// Get returns the cached value and whether it was present and fresh.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	e := el.Value.(*entry[K, V])
	if c.ttl > 0 && c.clock().After(e.expires) {
		c.order.Remove(el)
		delete(c.items, key)
		c.misses++
		return zero, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return e.value, true
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when full.
func (c *Cache[K, V]) Put(key K, value V) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[K, V])
		e.value = value
		e.expires = c.clock().Add(c.ttl)
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*entry[K, V]).key)
			c.evictions++
		}
	}
	el := c.order.PushFront(&entry[K, V]{key: key, value: value, expires: c.clock().Add(c.ttl)})
	c.items[key] = el
}

// GetOrLoad returns the cached value or loads, caches and returns it.
func (c *Cache[K, V]) GetOrLoad(key K, load func() (V, error)) (V, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := load()
	if err != nil {
		var zero V
		return zero, err
	}
	c.Put(key, v)
	return v, nil
}

// Len returns the number of live entries (possibly including expired ones
// not yet touched).
func (c *Cache[K, V]) Len() int { return c.order.Len() }

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.capacity }

// Stats returns cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Evictions returns how many entries capacity pressure has pushed out
// (expiry removals are not evictions).
func (c *Cache[K, V]) Evictions() uint64 { return c.evictions }

// Remove deletes the entry for key if present, reporting whether it was.
// Removal is an invalidation, not an eviction, and is not counted.
func (c *Cache[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache[K, V]) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
