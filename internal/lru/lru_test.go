package lru

import (
	"fmt"
	"testing"
	"time"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New[string, int](0, time.Second)
}

func TestGetPut(t *testing.T) {
	c := New[string, int](4, 0)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d,%v", v, ok)
	}
	c.Put("a", 2) // refresh
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("refreshed value = %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (no duplicate)", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](3, 0)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1)    // 1 becomes most recent; 2 is now oldest
	c.Put(4, 4) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("LRU entry not evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %d wrongly evicted", k)
		}
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	c := New[string, int](4, time.Second)
	c.SetClock(func() time.Time { return now })
	c.Put("a", 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("a"); ok {
		t.Error("expired entry served")
	}
	// Re-putting revives it.
	c.Put("a", 2)
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Errorf("revived entry = %d,%v", v, ok)
	}
}

func TestGetOrLoad(t *testing.T) {
	c := New[string, int](4, 0)
	loads := 0
	load := func() (int, error) { loads++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrLoad("k", load)
		if err != nil || v != 42 {
			t.Fatalf("GetOrLoad = %d, %v", v, err)
		}
	}
	if loads != 1 {
		t.Errorf("loader ran %d times, want 1", loads)
	}
	// Errors pass through and are not cached.
	boom := fmt.Errorf("boom")
	if _, err := c.GetOrLoad("bad", func() (int, error) { return 0, boom }); err != boom {
		t.Errorf("error not propagated: %v", err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Error("failed load cached")
	}
}

func TestStats(t *testing.T) {
	c := New[string, int](2, 0)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("miss")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2/1", hits, misses)
	}
	if hr := c.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("HitRate = %v, want 2/3", hr)
	}
	empty := New[string, int](2, 0)
	if empty.HitRate() != 0 {
		t.Error("HitRate of untouched cache not 0")
	}
}

func TestEvictionsCounter(t *testing.T) {
	c := New[string, int](2, 0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Evictions() != 0 {
		t.Fatalf("Evictions = %d before overflow, want 0", c.Evictions())
	}
	c.Put("c", 3) // evicts "a"
	c.Put("d", 4) // evicts "b"
	if c.Evictions() != 2 {
		t.Errorf("Evictions = %d, want 2", c.Evictions())
	}
	// Refreshing an existing key is not an eviction.
	c.Put("d", 5)
	if c.Evictions() != 2 {
		t.Errorf("Evictions = %d after refresh, want 2", c.Evictions())
	}
}

func TestRemove(t *testing.T) {
	c := New[string, int](2, 0)
	c.Put("a", 1)
	if !c.Remove("a") {
		t.Fatal("Remove of present key returned false")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key still readable")
	}
	if c.Remove("a") {
		t.Fatal("Remove of absent key returned true")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after removal, want 0", c.Len())
	}
	// Removal is an invalidation, not an eviction.
	if c.Evictions() != 0 {
		t.Errorf("Remove counted as eviction: %d", c.Evictions())
	}
	// Removing must free the slot without evicting on the next Put.
	c.Put("b", 2)
	c.Put("c", 3)
	if c.Evictions() != 0 {
		t.Errorf("Put after Remove evicted: %d", c.Evictions())
	}
}

func TestCap(t *testing.T) {
	if got := New[string, int](7, 0).Cap(); got != 7 {
		t.Errorf("Cap = %d, want 7", got)
	}
}
