package sim

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/topology"
)

// expectations holds the per-scenario assertions that prove a run actually
// exercised what its name claims — a fault scenario with zero injected
// faults would pass the invariants vacuously.
var expectations = map[string]func(t *testing.T, rep *Report){
	"happy-path": func(t *testing.T, rep *Report) {
		if rep.FailedTrees != 0 {
			t.Errorf("happy path failed %d trees, want 0", rep.FailedTrees)
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("happy path had %d recommend errors, want 0", rep.RecommendErrors)
		}
	},
	"kv-flaky": func(t *testing.T, rep *Report) {
		if rep.InjectedFaults == 0 {
			t.Error("flaky store injected no faults — scenario is vacuous")
		}
	},
	"kv-partition": func(t *testing.T, rep *Report) {
		if rep.InjectedFaults == 0 {
			t.Error("partition injected no faults — scenario is vacuous")
		}
		if rep.FailedTrees == 0 {
			t.Error("partition failed no tuple trees — writes never hit the partitioned namespace")
		}
	},
	"bolt-restart": func(t *testing.T, rep *Report) {
		if rep.FailedTrees == 0 {
			t.Error("bolt crash window failed no tuple trees")
		}
		if rep.Acked == 0 {
			t.Error("no tuple trees acked — the bolt never recovered")
		}
	},
	"cold-start": func(t *testing.T, rep *Report) {
		if rep.Recommends == 0 {
			t.Error("cold start served nothing — hot-list fallback is broken")
		}
	},
	"replica-failover": func(t *testing.T, rep *Report) {
		if rep.InjectedFaults == 0 {
			t.Error("replica outage injected no faults — scenario is vacuous")
		}
		if rep.FailedTrees != 0 {
			t.Errorf("write-all failed %d tuple trees despite a healthy replica 0", rep.FailedTrees)
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors despite a healthy replica 0", rep.RecommendErrors)
		}
		if rep.WriteSkips == 0 {
			t.Error("dead replica absorbed no write skips — replication never engaged")
		}
		if rep.BreakerTrips == 0 {
			t.Error("dead replica never tripped its breaker")
		}
		if len(rep.ReplicaDigests) != 2 {
			t.Fatalf("got %d replica digests, want 2", len(rep.ReplicaDigests))
		}
		if rep.ReplicaDigests[1] == rep.ReplicaDigests[0] {
			t.Error("dead replica's digest matches the survivor's — the outage changed nothing")
		}
	},
	"breaker-trip-recover": func(t *testing.T, rep *Report) {
		if rep.InjectedFaults == 0 {
			t.Error("outage window injected no faults — scenario is vacuous")
		}
		if rep.BreakerTrips == 0 {
			t.Error("outage never tripped the breaker")
		}
		if rep.BreakerResets == 0 {
			t.Error("breaker never closed again — no half-open probe succeeded after the outage window")
		}
		if rep.Retries == 0 {
			t.Error("no operation was ever retried — the retry layer never engaged")
		}
		if rep.ReadFallbacks == 0 {
			t.Error("no read fell back to the healthy replica during the outage")
		}
		if rep.FailedTrees != 0 {
			t.Errorf("outage failed %d tuple trees despite fallback + write-all", rep.FailedTrees)
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors despite a healthy replica", rep.RecommendErrors)
		}
	},
	"reward-starvation": func(t *testing.T, rep *Report) {
		if rep.ExplorePulls == 0 {
			t.Error("exploration charged no pulls — the policy never served")
		}
		if rep.ExploreWins != 0 {
			t.Errorf("starved run recorded %v wins, want 0 — a reward leaked in from nowhere", rep.ExploreWins)
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors — an empty reward state broke serving", rep.RecommendErrors)
		}
		if rep.Degraded != 0 {
			t.Errorf("%d responses degraded under starvation, want 0 — priors must be enough to serve", rep.Degraded)
		}
	},
	"explore-feedback": func(t *testing.T, rep *Report) {
		if rep.ExplorePulls == 0 {
			t.Error("exploration charged no pulls — the policy never served")
		}
		if rep.ExploreWins == 0 {
			t.Error("feedback clicks moved no posteriors — the reward line never closed the loop")
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors during the explore-feedback run", rep.RecommendErrors)
		}
		if rep.FailedTrees != 0 {
			t.Errorf("feedback run failed %d tuple trees, want 0", rep.FailedTrees)
		}
	},
	"explore-blackout": func(t *testing.T, rep *Report) {
		if rep.InjectedFaults == 0 {
			t.Error("serving-phase blackout injected no faults — scenario is vacuous")
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors — availability broke under the model blackout", rep.RecommendErrors)
		}
		if rep.Degraded != rep.Recommends {
			t.Errorf("%d of %d responses degraded, want all", rep.Degraded, rep.Recommends)
		}
		if rep.ExplorePulls != 0 {
			t.Errorf("degraded serving charged %v pulls, want 0 — a Degraded response sampled the policy", rep.ExplorePulls)
		}
	},
	"quantized-serving": func(t *testing.T, rep *Report) {
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors on the quantized path, want 0", rep.RecommendErrors)
		}
		if rep.Degraded != 0 {
			t.Errorf("%d responses degraded on the quantized path, want 0", rep.Degraded)
		}
		if rep.Recommends == 0 {
			t.Error("quantized run served nothing")
		}
	},
	"ann-retrieval": func(t *testing.T, rep *Report) {
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors with ANN retrieval on, want 0", rep.RecommendErrors)
		}
		if rep.Degraded != 0 {
			t.Errorf("%d responses degraded with ANN retrieval on, want 0", rep.Degraded)
		}
		if rep.Recommends == 0 {
			t.Error("ANN run served nothing")
		}
	},
	"shard-loss": func(t *testing.T, rep *Report) {
		if rep.InjectedFaults == 0 {
			t.Error("shard primary outage injected no faults — scenario is vacuous")
		}
		if rep.ShardPromotes == 0 {
			t.Error("dead primary never promoted its backup")
		}
		if rep.FailedTrees != 0 {
			t.Errorf("shard loss failed %d tuple trees despite a live backup", rep.FailedTrees)
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors despite a live backup", rep.RecommendErrors)
		}
		if len(rep.ReplicaDigests) != 2 {
			t.Fatalf("got %d group digests, want 2", len(rep.ReplicaDigests))
		}
	},
	"rebalance-mid-serving": func(t *testing.T, rep *Report) {
		if want := uint64(2 * rep.Scenario.RebalanceSlots); rep.ShardRebalances != want {
			t.Errorf("completed %d slot migrations, want %d", rep.ShardRebalances, want)
		}
		if rep.ShardMovedKeys == 0 {
			t.Error("migrations moved no keys — scenario is vacuous")
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors during live rebalance, want 0 — a read was dropped", rep.RecommendErrors)
		}
		if rep.Degraded != 0 {
			t.Errorf("%d responses degraded during live rebalance, want 0", rep.Degraded)
		}
	},
	"split-brain": func(t *testing.T, rep *Report) {
		if want := uint64(rep.Scenario.RebalanceSlots); rep.ShardRebalances != want {
			t.Errorf("completed %d slot migrations, want %d", rep.ShardRebalances, want)
		}
		if rep.ShardMovedKeys == 0 {
			t.Error("migration moved no keys — scenario is vacuous")
		}
		if rep.ShardRedirects == 0 {
			t.Error("no client ever drew an ErrWrongServer redirect")
		}
		if rep.FailedTrees != 0 {
			t.Errorf("mid-replay migration failed %d tuple trees, want 0 — frozen writes must park and retry", rep.FailedTrees)
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors after the migration, want 0", rep.RecommendErrors)
		}
	},
	"degraded-serving": func(t *testing.T, rep *Report) {
		if rep.InjectedFaults == 0 {
			t.Error("serving-phase blackout injected no faults — scenario is vacuous")
		}
		if rep.RecommendErrors != 0 {
			t.Errorf("%d recommend errors — availability broke under the model blackout", rep.RecommendErrors)
		}
		if rep.Degraded == 0 {
			t.Error("no response was marked Degraded under a total model outage")
		}
		if rep.Degraded != rep.Recommends {
			t.Errorf("%d of %d responses degraded, want all — some personalized path dodged the blackout", rep.Degraded, rep.Recommends)
		}
	},
}

// TestScenarios runs the full matrix: every named scenario must complete
// with zero invariant violations, and the fault scenarios must prove they
// actually injected faults.
func TestScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			rep, err := Run(ctx, sc)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, violation := range rep.Violations {
				t.Errorf("invariant violated: %s", violation)
			}
			if rep.Actions == 0 || rep.Spouted == 0 {
				t.Errorf("scenario replayed nothing: %d actions, %d spouted", rep.Actions, rep.Spouted)
			}
			if check := expectations[sc.Name]; check != nil {
				check(t, rep)
			}
			t.Logf("actions=%d spouted=%d acked=%d failedTrees=%d kvOps=%d faults=%d recommends=%d/%d digest=%s",
				rep.Actions, rep.Spouted, rep.Acked, rep.FailedTrees,
				rep.KVOps, rep.InjectedFaults, rep.Recommends, rep.Recommends+rep.RecommendErrors,
				rep.Digest[:12])
		})
	}
}

// TestReplayDeterminism runs the determinism scenario twice and demands
// byte-identical canonical model state (compared through its SHA-256) and
// identical accounting — the property every future optimisation must
// preserve to claim behavioural equivalence.
func TestReplayDeterminism(t *testing.T) {
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "replay-determinism" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("replay-determinism scenario missing from matrix")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	first, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	second, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if first.Digest != second.Digest {
		t.Errorf("state digests differ across same-seed runs:\n  first:  %s\n  second: %s", first.Digest, second.Digest)
	}
	if first.ServeDigest != second.ServeDigest {
		t.Errorf("served-output digests differ across same-seed runs:\n  first:  %s\n  second: %s", first.ServeDigest, second.ServeDigest)
	}
	if first.Spouted != second.Spouted || first.Acked != second.Acked || first.FailedTrees != second.FailedTrees {
		t.Errorf("accounting differs: first {spouted %d acked %d failed %d}, second {spouted %d acked %d failed %d}",
			first.Spouted, first.Acked, first.FailedTrees, second.Spouted, second.Acked, second.FailedTrees)
	}
	if first.Recommends != second.Recommends {
		t.Errorf("recommend successes differ: %d vs %d", first.Recommends, second.Recommends)
	}
}

// TestCacheTransparency runs the serialized determinism scenario with the
// decoded-value read cache enabled (the default) and disabled, and demands
// identical written state AND identical served lists. This is the
// end-to-end proof that write-through invalidation keeps the cache
// coherent: a single stale cached object — in the training reads that feed
// similar-table writes, or in the serving reads — would split the digests.
// (Only fault-free scenarios are comparable this way: cached reads never
// reach the fault injector, so under injection the two runs see different
// fault landings by construction.)
func TestCacheTransparency(t *testing.T) {
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "replay-determinism" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("replay-determinism scenario missing from matrix")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cached, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("cached run: %v", err)
	}
	sc.DisableCache = true
	uncached, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("uncached run: %v", err)
	}
	if cached.Digest != uncached.Digest {
		t.Errorf("state digests differ with cache on/off:\n  cached:   %s\n  uncached: %s", cached.Digest, uncached.Digest)
	}
	if cached.ServeDigest != uncached.ServeDigest {
		t.Errorf("served-output digests differ with cache on/off:\n  cached:   %s\n  uncached: %s", cached.ServeDigest, uncached.ServeDigest)
	}
	if cached.Recommends != uncached.Recommends || cached.RecommendErrors != uncached.RecommendErrors {
		t.Errorf("serving accounting differs: cached %d/%d errors, uncached %d/%d errors",
			cached.Recommends, cached.RecommendErrors, uncached.Recommends, uncached.RecommendErrors)
	}
	// The cached run must actually have exercised the cache, or the
	// comparison is vacuous.
	if cached.KVOps >= uncached.KVOps {
		t.Errorf("cache saved no store operations: %d cached vs %d uncached — transparency test is vacuous", cached.KVOps, uncached.KVOps)
	}
}

// TestReplicaFailoverDigest is the failover-transparency proof: the
// replica-failover scenario (replica 1 dies mid-replay) must produce
// byte-identical trained state AND served output to the very same scenario
// with no faults at all. Write-all keeps replica 0's operation sequence
// independent of replica 1's health, and read-first-healthy always answers
// from replica 0 — so a client cannot tell a failover happened. The dead
// replica's own digest is the negative control: it must diverge in the
// faulted run and match in the fault-free one.
func TestReplicaFailoverDigest(t *testing.T) {
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "replica-failover" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("replica-failover scenario missing from matrix")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	faulted, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	sc.ReplicaFaults = nil
	clean, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	if faulted.Digest != clean.Digest {
		t.Errorf("state digests differ with and without the replica outage:\n  faulted: %s\n  clean:   %s", faulted.Digest, clean.Digest)
	}
	if faulted.ServeDigest != clean.ServeDigest {
		t.Errorf("served-output digests differ with and without the replica outage:\n  faulted: %s\n  clean:   %s", faulted.ServeDigest, clean.ServeDigest)
	}
	if faulted.Degraded != 0 || clean.Degraded != 0 {
		t.Errorf("degraded responses on a run with a healthy replica 0: faulted %d, clean %d", faulted.Degraded, clean.Degraded)
	}
	// Negative controls: the comparison is only meaningful if the outage
	// really happened and really cost replica 1 its state.
	if faulted.InjectedFaults == 0 {
		t.Error("faulted run injected nothing — transparency comparison is vacuous")
	}
	if len(clean.ReplicaDigests) == 2 && clean.ReplicaDigests[0] != clean.ReplicaDigests[1] {
		t.Error("fault-free replicas disagree — write-all is not replicating")
	}
	if len(faulted.ReplicaDigests) == 2 && faulted.ReplicaDigests[0] == faulted.ReplicaDigests[1] {
		t.Error("faulted replicas agree — the outage never happened")
	}
}

// TestShardLossDigest is the sharding-transparency proof, fault edition: the
// shard-loss scenario (group 1's primary dies mid-replay, backup promotes)
// must produce byte-identical trained state AND served output to the very
// same workload running against a single unpartitioned store with no faults
// at all. Synchronous replication means the backup holds every write the
// dead primary ever acknowledged, and promotion surfaces no error to the
// pipeline — so neither the partitioning nor the failover may shift a single
// byte of state or serving.
func TestShardLossDigest(t *testing.T) {
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "shard-loss" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("shard-loss scenario missing from matrix")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	faulted, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("sharded faulted run: %v", err)
	}
	sc.Shards = 0
	sc.ShardFaults = nil
	clean, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("unpartitioned fault-free run: %v", err)
	}
	if faulted.Digest != clean.Digest {
		t.Errorf("state digests differ between the sharded faulted run and the unpartitioned clean run:\n  sharded: %s\n  local:   %s",
			faulted.Digest, clean.Digest)
	}
	if faulted.ServeDigest != clean.ServeDigest {
		t.Errorf("served-output digests differ between the sharded faulted run and the unpartitioned clean run:\n  sharded: %s\n  local:   %s",
			faulted.ServeDigest, clean.ServeDigest)
	}
	// Negative controls: the comparison is vacuous unless the outage really
	// happened and really cost a failover.
	if faulted.InjectedFaults == 0 {
		t.Error("faulted run injected nothing — transparency comparison is vacuous")
	}
	if faulted.ShardPromotes == 0 {
		t.Error("no promotion happened — transparency comparison is vacuous")
	}
}

// TestRebalanceDigest is the sharding-transparency proof, migration edition:
// rebalance-mid-serving (slots migrate between groups with Recommend traffic
// in flight) must produce byte-identical trained state AND served output to
// the same workload on a single unpartitioned store with no migration. The
// freeze→transfer→flip handoff never fails a read and moves state
// byte-for-byte, so serving cannot observe the move.
func TestRebalanceDigest(t *testing.T) {
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "rebalance-mid-serving" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("rebalance-mid-serving scenario missing from matrix")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	rebalanced, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("sharded rebalancing run: %v", err)
	}
	sc.Shards = 0
	sc.RebalanceDuringServe = false
	sc.RebalanceSlots = 0
	still, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("unpartitioned run: %v", err)
	}
	if rebalanced.Digest != still.Digest {
		t.Errorf("state digests differ between the rebalanced sharded run and the unpartitioned run:\n  sharded: %s\n  local:   %s",
			rebalanced.Digest, still.Digest)
	}
	if rebalanced.ServeDigest != still.ServeDigest {
		t.Errorf("served-output digests differ between the rebalanced sharded run and the unpartitioned run:\n  sharded: %s\n  local:   %s",
			rebalanced.ServeDigest, still.ServeDigest)
	}
	if rebalanced.ShardMovedKeys == 0 {
		t.Error("rebalanced run moved no keys — transparency comparison is vacuous")
	}
}

// TestExploreDeterminism runs each exploration scenario twice and demands
// byte-identical state AND served-output digests — the ServeDigest folds in
// the per-slot arm tags, so a single diverging Thompson draw anywhere in the
// request phase splits it. This is the replay guarantee for the seeded
// policy RNG and the virtual-clock reward stamps.
func TestExploreDeterminism(t *testing.T) {
	for _, name := range []string{"reward-starvation", "explore-feedback"} {
		t.Run(name, func(t *testing.T) {
			var sc Scenario
			for _, s := range Scenarios() {
				if s.Name == name {
					sc = s
				}
			}
			if sc.Name == "" {
				t.Fatalf("%s scenario missing from matrix", name)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			first, err := Run(ctx, sc)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := Run(ctx, sc)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if first.Digest != second.Digest {
				t.Errorf("state digests differ across same-seed explore runs:\n  first:  %s\n  second: %s", first.Digest, second.Digest)
			}
			if first.ServeDigest != second.ServeDigest {
				t.Errorf("served-output digests differ across same-seed explore runs:\n  first:  %s\n  second: %s", first.ServeDigest, second.ServeDigest)
			}
			if first.ExplorePulls != second.ExplorePulls || first.ExploreWins != second.ExploreWins {
				t.Errorf("reward accounting differs: first {pulls %v wins %v}, second {pulls %v wins %v}",
					first.ExplorePulls, first.ExploreWins, second.ExplorePulls, second.ExploreWins)
			}
		})
	}
}

// TestQuantizedDeterminism runs the quantized and ANN scenarios twice and
// demands byte-identical state AND served-output digests: the integer
// kernel is exact and the LSH probe is seed-derived, so neither path may
// introduce a single diverging bit across same-seed replays.
func TestQuantizedDeterminism(t *testing.T) {
	for _, name := range []string{"quantized-serving", "ann-retrieval"} {
		t.Run(name, func(t *testing.T) {
			var sc Scenario
			for _, s := range Scenarios() {
				if s.Name == name {
					sc = s
				}
			}
			if sc.Name == "" {
				t.Fatalf("%s scenario missing from matrix", name)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			first, err := Run(ctx, sc)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := Run(ctx, sc)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if first.Digest != second.Digest {
				t.Errorf("state digests differ across same-seed quantized runs:\n  first:  %s\n  second: %s", first.Digest, second.Digest)
			}
			if first.ServeDigest != second.ServeDigest {
				t.Errorf("served-output digests differ across same-seed quantized runs:\n  first:  %s\n  second: %s", first.ServeDigest, second.ServeDigest)
			}
		})
	}
}

// TestANNTrainingTransparency proves the ANN knob is serve-only: running
// the ann-retrieval scenario with ANN on and off must leave byte-identical
// trained state, because the LSH index lives beside the store (fed by the
// item-vector hook), never in it. Only the state digest is compared —
// served output legitimately differs with an extra candidate source. The
// quantized knob has no such pair test: it DOES add q8 records to the
// store, and checkStore instead proves each one re-quantizes exactly from
// the float state beside it.
func TestANNTrainingTransparency(t *testing.T) {
	var sc Scenario
	for _, s := range Scenarios() {
		if s.Name == "ann-retrieval" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("ann-retrieval scenario missing from matrix")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	on, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("ANN run: %v", err)
	}
	sc.ANN = false
	off, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("no-ANN run: %v", err)
	}
	if on.Digest != off.Digest {
		t.Errorf("state digests differ with ANN on/off — the candidate index leaked into training state:\n  on:  %s\n  off: %s", on.Digest, off.Digest)
	}
	if on.Recommends != off.Recommends || on.RecommendErrors != off.RecommendErrors {
		t.Errorf("serving accounting differs: on %d/%d errors, off %d/%d errors",
			on.Recommends, on.RecommendErrors, off.Recommends, off.RecommendErrors)
	}
}

// TestDifferentSeedsDiverge is the negative control for the determinism
// oracle: two seeds must not land on the same state digest, otherwise the
// digest is insensitive and the determinism test proves nothing.
func TestDifferentSeedsDiverge(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	base := Scenario{Name: "diverge-a", Seed: 1, Parallelism: serialParallelism(), MaxPending: 1, Tracked: true, Synchronous: true}
	other := base
	other.Name, other.Seed = "diverge-b", 2

	a, err := Run(ctx, base)
	if err != nil {
		t.Fatalf("seed 1 run: %v", err)
	}
	b, err := Run(ctx, other)
	if err != nil {
		t.Fatalf("seed 2 run: %v", err)
	}
	if a.Digest == b.Digest {
		t.Errorf("different seeds produced identical digest %s — oracle is blind", a.Digest)
	}
}

// TestScenarioValidation pins the withDefaults error cases.
func TestScenarioValidation(t *testing.T) {
	if _, err := (Scenario{}).withDefaults(); err == nil {
		t.Error("unnamed scenario accepted")
	}
	bad := Scenario{Name: "two-spouts", Parallelism: topology.Parallelism{
		Spout: 2, ComputeMF: 1, MFStorage: 1, UserHistory: 1, GetItemPairs: 1, ItemPairSim: 1, ResultStorage: 1,
	}}
	if _, err := bad.withDefaults(); err == nil {
		t.Error("multi-spout scenario accepted — replay order would be nondeterministic")
	}
	if _, err := (Scenario{Name: "x", Transport: "carrier-pigeon"}).withDefaults(); err == nil {
		t.Error("unknown transport accepted")
	}
}

// TestFaultScheduleScoping pins the fault-phase semantics the scenarios
// depend on: op-counted phases and key-prefix scoping.
func TestFaultScheduleScoping(t *testing.T) {
	ctx := context.Background()
	f := kvstore.NewFaulty(kvstore.NewLocal(4), 42)
	f.SetSchedule([]kvstore.FaultPhase{
		{Ops: 2},
		{Ops: 0, FailRate: 1, KeyPrefix: "sys.hot"},
	})
	// Phase one: everything succeeds.
	if err := f.Set(ctx, "sys.hot:g", []byte("x")); err != nil {
		t.Fatalf("op 1 failed inside quiet phase: %v", err)
	}
	if err := f.Set(ctx, "sys.hist:u", []byte("x")); err != nil {
		t.Fatalf("op 2 failed inside quiet phase: %v", err)
	}
	// Phase two: only the hot namespace fails.
	if err := f.Set(ctx, "sys.hot:g", []byte("x")); err == nil {
		t.Error("prefixed key survived a FailRate-1 phase")
	}
	if err := f.Set(ctx, "sys.hist:u", []byte("x")); err != nil {
		t.Errorf("non-prefixed key failed in a scoped phase: %v", err)
	}
}
