package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"vidrec/internal/kvstore"
)

// shardCluster is the sharded-tier analogue of the replica chains: Shards
// primary/backup groups of Locals, each replica behind its own fault
// injector (and optional Resilient decorator), composed under a Coordinator
// and fronted by a Sharded router the pipeline uses as its store. The
// harness keeps every layer by hand so it can schedule faults per replica,
// drive rebalances mid-run, and digest the merged state afterwards.
type shardCluster struct {
	groups    []*kvstore.ShardGroup
	bases     [][]*kvstore.Local // [group][role]; role 0 primary, 1 backup
	faulties  [][]*kvstore.Faulty
	coord     *kvstore.Coordinator
	router    *kvstore.Sharded
	stale     *kvstore.Sharded // second client, built on the v1 map; nil unless sc.StaleRouter
	resilient []*kvstore.Resilient

	mu        sync.Mutex
	movedKeys int      // guarded by mu
	errs      []string // guarded by mu; rebalance-hook failures become violations
}

// shardFaultSeed derives the injector seed for one shard replica, mixing
// the flat replica index (group*2 + role) with a Weyl increment the same
// way replicaFaultSeed does.
func shardFaultSeed(seed uint64, group, role int) uint64 {
	return seed ^ 0x5A4D ^ (uint64(group*2+role+1) * 0x9E3779B97F4A7C15)
}

// newShardCluster assembles the sharded storage stack for a scenario. The
// per-replica chain mirrors the replicated stack exactly — Local, fault
// injector, optional Resilient decorator — so the sharded tier composes
// under the same retry/breaker machinery, just below the group instead of
// below Replicated.
func newShardCluster(sc Scenario, vclock *VirtualClock) (*shardCluster, error) {
	c := &shardCluster{}
	for gi := 0; gi < sc.Shards; gi++ {
		replicas := make([]kvstore.Store, 2)
		c.bases = append(c.bases, make([]*kvstore.Local, 2))
		c.faulties = append(c.faulties, make([]*kvstore.Faulty, 2))
		for role := 0; role < 2; role++ {
			base := kvstore.NewLocal(32)
			faulty := kvstore.NewFaulty(base, shardFaultSeed(sc.Seed, gi, role))
			c.bases[gi][role] = base
			c.faulties[gi][role] = faulty
			replicas[role] = faulty
			if sc.Resilience != nil {
				r := kvstore.NewResilient(faulty, *sc.Resilience, shardFaultSeed(sc.Seed, gi, role)^0xB0FF)
				// Same clock discipline as the replica chains: breaker
				// cooldowns follow the virtual clock, retry waits are no-ops.
				r.SetClock(vclock.Now)
				r.SetSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
				c.resilient = append(c.resilient, r)
				replicas[role] = r
			}
		}
		g, err := kvstore.NewShardGroup(fmt.Sprintf("g%d", gi), replicas...)
		if err != nil {
			return nil, fmt.Errorf("sim: build shard group %d: %w", gi, err)
		}
		c.groups = append(c.groups, g)
	}
	coord, err := kvstore.NewCoordinator(c.groups...)
	if err != nil {
		return nil, fmt.Errorf("sim: build shard coordinator: %w", err)
	}
	c.coord = coord
	router, err := kvstore.NewSharded(coord, sc.Seed|1)
	if err != nil {
		return nil, fmt.Errorf("sim: build shard router: %w", err)
	}
	c.router = router
	if sc.StaleRouter {
		stale, err := kvstore.NewSharded(coord, (sc.Seed|1)^0x57A1E)
		if err != nil {
			return nil, fmt.Errorf("sim: build stale shard router: %w", err)
		}
		c.stale = stale
	}
	return c, nil
}

// arm installs each replica's replay-phase fault schedule. Indices into
// ShardFaults are group*2 + role; missing or nil entries run fault-free.
func (c *shardCluster) arm(sc Scenario) {
	for gi := range c.faulties {
		for role := range c.faulties[gi] {
			var phases []kvstore.FaultPhase
			if i := gi*2 + role; i < len(sc.ShardFaults) {
				phases = sc.ShardFaults[i]
			}
			c.faulties[gi][role].SetSchedule(phases)
		}
	}
}

// moveSlots migrates n slots off group 0 onto group 1 (lowest slot numbers
// first, so the move set is deterministic), recording any failure as a
// violation rather than tearing down the run — a botched rebalance is
// exactly what the scenario exists to surface.
func (c *shardCluster) moveSlots(ctx context.Context, n int) {
	m, _ := c.coord.View()
	moved := 0
	for s := 0; s < kvstore.NumShardSlots && moved < n; s++ {
		if m.GroupFor(s) != 0 {
			continue
		}
		keys, err := c.coord.Rebalance(ctx, s, c.groups[1].Name())
		if err != nil {
			c.mu.Lock()
			c.errs = append(c.errs, fmt.Sprintf("rebalance slot %d: %v", s, err))
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		c.movedKeys += keys
		c.mu.Unlock()
		moved++
	}
}

// probeStale drives every stored key through the stale router after
// quiescence: a client still routing on the pre-rebalance map must draw
// ErrWrongServer internally, refresh, and answer every read correctly —
// the split-brain recovery contract. Returns violations.
func (c *shardCluster) probeStale(ctx context.Context) []string {
	if c.stale == nil {
		return nil
	}
	var violations []string
	startVersion := c.stale.MapVersion()
	if cur := c.coord.Stats().Version; startVersion >= cur {
		violations = append(violations,
			fmt.Sprintf("stale-router probe is vacuous: router at map v%d, coordinator at v%d", startVersion, cur))
	}
	keys := c.allKeys()
	for _, k := range keys {
		want, ok, err := c.router.Get(ctx, k)
		if err != nil || !ok {
			violations = append(violations, fmt.Sprintf("fresh router lost key %q: ok=%v err=%v", k, ok, err))
			continue
		}
		got, ok, err := c.stale.Get(ctx, k)
		if err != nil {
			violations = append(violations, fmt.Sprintf("stale router read %q: %v", k, err))
			continue
		}
		if !ok || string(got) != string(want) {
			violations = append(violations, fmt.Sprintf("stale router read %q diverged", k))
		}
	}
	if c.stale.MapVersion() != c.coord.Stats().Version {
		violations = append(violations, fmt.Sprintf("stale router never caught up: at map v%d, coordinator at v%d",
			c.stale.MapVersion(), c.coord.Stats().Version))
	}
	if c.stale.Stats().Redirects == 0 {
		violations = append(violations, "stale router drew no ErrWrongServer redirects — split-brain probe is vacuous")
	}
	return violations
}

// allKeys returns every key in the cluster (each group's acting primary),
// sorted for a deterministic probe order.
func (c *shardCluster) allKeys() []string {
	var keys []string
	for gi, g := range c.groups {
		c.bases[gi][g.PrimaryIndex()].ForEach(func(k string, _ []byte) bool {
			keys = append(keys, k)
			return true
		})
	}
	sort.Strings(keys)
	return keys
}

// merged copies every group's acting-primary state into one Local — the
// union the digest and invariant checkers run on. Slots are disjoint across
// groups (the routing invariant), so the union is exactly the state an
// unpartitioned run would hold.
func (c *shardCluster) merged(ctx context.Context) (*kvstore.Local, error) {
	m := kvstore.NewLocal(32)
	for gi, g := range c.groups {
		var err error
		c.bases[gi][g.PrimaryIndex()].ForEach(func(k string, v []byte) bool {
			err = m.Set(ctx, k, v)
			return err == nil
		})
		if err != nil {
			return nil, fmt.Errorf("sim: merge shard state: %w", err)
		}
	}
	return m, nil
}

// groupDigests returns each group's acting-primary state digest.
func (c *shardCluster) groupDigests() []string {
	out := make([]string, len(c.groups))
	for gi, g := range c.groups {
		out[gi] = StateDigest(c.bases[gi][g.PrimaryIndex()])
	}
	return out
}

// hookViolations drains rebalance-hook failures.
func (c *shardCluster) hookViolations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.errs...)
}

// moved reports how many keys the rebalance hooks migrated.
func (c *shardCluster) moved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.movedKeys
}
