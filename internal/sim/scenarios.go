package sim

import (
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/topology"
)

// serialParallelism is the fully serialized layout replay determinism
// requires: one task per component, so tuple routing and store write order
// are a function of the stream alone.
func serialParallelism() topology.Parallelism {
	return topology.Parallelism{
		Spout: 1, ComputeMF: 1, MFStorage: 1, UserHistory: 1,
		GetItemPairs: 1, ItemPairSim: 1, ResultStorage: 1,
		BanditReward: 1, BanditState: 1,
	}
}

// Scenarios returns the named scenario matrix — the suite `make test-sim`
// runs. Every scenario must finish with zero invariant violations; the
// matrix spans transports, fault classes, and load shapes so a regression
// anywhere in the pipeline trips at least one of them.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// The baseline: default parallelism, no faults, tracked so the
			// acker conservation law is checked action by action.
			Name:    "happy-path",
			Seed:    101,
			Tracked: true,
		},
		{
			// Same seed ⇒ byte-identical model state. Runs on the storm
			// engine's synchronous scheduler: execution order is a pure
			// function of the stream, because even single-task components
			// race on shared store keys under the concurrent scheduler
			// (history append vs. pair-window read, vector write vs. pair
			// score read). The test runs this twice and compares digests.
			Name:        "replay-determinism",
			Seed:        202,
			Parallelism: serialParallelism(),
			MaxPending:  1,
			Tracked:     true,
			Synchronous: true,
		},
		{
			// Every ~20th store operation fails, forever. Bolts fail their
			// tuple trees, serving requests error — but nothing panics, no
			// tree leaks, and durable state stays well-formed.
			Name:     "kv-flaky",
			Seed:     303,
			Tracked:  true,
			KVFaults: []kvstore.FaultPhase{{FailRate: 0.05}},
		},
		{
			// A latency spike in the middle of the replay: 200 operations
			// slowed by 2ms after a quiet lead-in. Exercises timer paths and
			// proves slow storage stalls, not corrupts.
			Name:    "kv-latency-spike",
			Seed:    404,
			Tracked: true,
			KVFaults: []kvstore.FaultPhase{
				{Ops: 300},
				{Ops: 200, Latency: 2 * time.Millisecond},
				{Ops: 0},
			},
		},
		{
			// A partial partition: the global similar-video tables become
			// unreachable for a 300-op window while every other namespace
			// keeps working — the per-group tables and models train through.
			Name:    "kv-partition",
			Seed:    505,
			Tracked: true,
			// The outage starts mid-replay and holds to the end: early
			// operations are model and history writes — similar-table
			// traffic only picks up once users have accumulated history,
			// so an early window would never hit the partitioned namespace.
			// The lead-in is counted in ops that REACH the store, which the
			// decoded-value cache keeps well below the logical access count —
			// and, under the concurrent scheduler, makes variable across runs
			// (interleaving decides which reads the cache absorbs; observed
			// totals range roughly 9.5k–11.7k). The outage must start well
			// before the *smallest* plausible end of ingest so similar-table
			// writes always land inside it, or the scenario is vacuous (the
			// expectations in scenarios_test.go demand injected faults AND
			// failed tuple trees).
			KVFaults: []kvstore.FaultPhase{
				{Ops: 5000},
				{FailRate: 1, KeyPrefix: "sys/global.sim"},
			},
		},
		{
			// One bolt runs slow (per-tuple delay in ItemPairSim, the widest
			// fan-in). Backpressure propagates through the bounded queues;
			// the run completes with full accounting.
			Name:       "slow-bolt",
			Seed:       606,
			Tracked:    true,
			BoltFaults: []BoltFault{{Bolt: topology.ItemPairSimName, Delay: 200 * time.Microsecond}},
		},
		{
			// A ComputeMF worker crashes after 50 tuples, drops 10 on the
			// floor (their trees fail — at-least-once), then restarts with
			// cold caches and keeps training.
			Name:       "bolt-restart",
			Seed:       707,
			Tracked:    true,
			BoltFaults: []BoltFault{{Bolt: topology.ComputeMFName, AfterTuples: 50, DownFor: 10}},
		},
		{
			// A day's worth of traffic compressed into tiny queues:
			// backpressure instead of drops, untracked emission (the
			// fire-and-forget configuration production spouts default to).
			Name:         "burst-traffic",
			Seed:         808,
			Days:         1,
			EventsPerDay: 300,
			QueueSize:    4,
		},
		{
			// Nearly no training data, then more requests than users: new
			// users must be served from the demographic hot lists without a
			// single invariant breach.
			Name:         "cold-start",
			Seed:         909,
			Users:        30,
			Videos:       60,
			Days:         1,
			EventsPerDay: 30,
			Recommends:   60,
			Tracked:      true,
		},
		{
			// The baseline again, but through the real gob-over-TCP
			// server/client pair — same invariants across the wire.
			Name:      "tcp-happy",
			Seed:      1010,
			Tracked:   true,
			Transport: TransportTCP,
		},
		{
			// Fault injection on top of the network transport: failures now
			// model dropped requests between pipeline and store.
			Name:      "tcp-flaky",
			Seed:      1111,
			Tracked:   true,
			Transport: TransportTCP,
			KVFaults:  []kvstore.FaultPhase{{FailRate: 0.03}},
		},
		{
			// Two replicas behind write-all/read-first-healthy; replica 1
			// dies permanently 1000 ops into the replay. Write-all absorbs
			// every skip, read-first-healthy keeps answering from replica 0 —
			// so this run's Digest AND ServeDigest must be byte-identical to
			// the same scenario with no faults at all (the failover-
			// transparency test runs both), while ReplicaDigests[1] visibly
			// diverges. Fully serialized for that comparison to be exact.
			Name:        "replica-failover",
			Seed:        1212,
			Parallelism: serialParallelism(),
			MaxPending:  1,
			Tracked:     true,
			Synchronous: true,
			Replicas:    2,
			Resilience: &kvstore.ResilienceConfig{
				MaxRetries: 1,
				Backoff:    kvstore.BackoffConfig{Base: kvstore.DefaultBackoffBase, Max: kvstore.DefaultBackoffMax},
				Breaker:    kvstore.BreakerConfig{Threshold: 4, Cooldown: 100 * time.Millisecond},
			},
			ReplicaFaults: [][]kvstore.FaultPhase{
				nil,
				{{Ops: 1000}, {FailRate: 1}},
			},
		},
		{
			// The breaker drill: a 40-op total outage on replica 0 trips its
			// breaker (failing fast instead of burning the retry budget on a
			// dead backend), reads fall back to replica 1, write-all absorbs
			// the skips — then half-open probes burn down the outage window
			// (the virtual clock jumps minutes per action, dwarfing the
			// cooldown) until one lands and the breaker closes again. The
			// expectations demand the full trip AND reset happened, with zero
			// failed trees and zero serving errors end to end. MaxPending 1
			// paces the virtual clock with processing: an unbounded spout
			// drains the whole stream (and the clock) ahead of the bolts,
			// freezing the clock mid-outage so the cooldown never elapses.
			Name:       "breaker-trip-recover",
			Seed:       1313,
			Tracked:    true,
			MaxPending: 1,
			Replicas:   2,
			Resilience: &kvstore.ResilienceConfig{
				MaxRetries: 1,
				Backoff:    kvstore.BackoffConfig{Base: kvstore.DefaultBackoffBase, Max: kvstore.DefaultBackoffMax},
				Breaker:    kvstore.BreakerConfig{Threshold: 5, Cooldown: 100 * time.Millisecond},
			},
			ReplicaFaults: [][]kvstore.FaultPhase{
				{{Ops: 1000}, {Ops: 40, FailRate: 1}, {Ops: 0}},
				nil,
			},
		},
		{
			// Total model/simtable outage ("sys/...") that begins only at the
			// serving phase: every personalized read path is dead, yet every
			// request must still be answered — Degraded, from the demographic
			// hot lists, whose "sys.hot:" namespace survives the blackout.
			// The cache is disabled so the blackout deterministically reaches
			// every model read instead of whatever the replay left cached.
			Name:         "degraded-serving",
			Seed:         1414,
			Tracked:      true,
			DisableCache: true,
			ServeFaults:  []kvstore.FaultPhase{{FailRate: 1, KeyPrefix: "sys/"}},
		},
		{
			// Reward starvation: exploration serves every slate (pulls are
			// charged, slots attributed) but no click ever comes back, so the
			// posteriors must sit at their priors — wins exactly zero — and
			// serving must never degrade on account of an empty reward state.
			// Fully serialized so the replay-determinism test can demand
			// byte-identical digests for the explored slates too.
			Name:        "reward-starvation",
			Seed:        1515,
			Parallelism: serialParallelism(),
			MaxPending:  1,
			Tracked:     true,
			Synchronous: true,
			Explore:     true,
		},
		{
			// The loop closed: after the request phase, 20 simulated clicks on
			// served slots stream through a second topology run — the
			// BanditReward → BanditState line consumes the attributions and
			// the final reward state must show real wins.
			Name:           "explore-feedback",
			Seed:           1616,
			Parallelism:    serialParallelism(),
			MaxPending:     1,
			Tracked:        true,
			Synchronous:    true,
			Explore:        true,
			FeedbackClicks: 20,
		},
		{
			// The quantized serving drill: the request phase scores through
			// the int8 kernel (Eq. 2 on DotQ8) instead of the float path.
			// Fully serialized so the quantized determinism test can demand
			// byte-identical digests, and so the training-transparency test
			// can compare its state digest against a float run — quantization
			// is serve-only and must leave the trained state untouched.
			Name:        "quantized-serving",
			Seed:        1818,
			Parallelism: serialParallelism(),
			MaxPending:  1,
			Tracked:     true,
			Synchronous: true,
			Quantized:   true,
		},
		{
			// ANN retrieval stacked on quantized scoring — the full sub-10µs
			// serving configuration: the user vector probes the LSH index,
			// the hits join the similar-table and hot-list candidates, and
			// the blend is scored on the integer kernel. Serialized for the
			// same determinism and training-transparency comparisons.
			Name:        "ann-retrieval",
			Seed:        1919,
			Parallelism: serialParallelism(),
			MaxPending:  1,
			Tracked:     true,
			Synchronous: true,
			Quantized:   true,
			ANN:         true,
		},
		{
			// Exploration composed with the degraded-serving blackout: the
			// "sys/" outage kills every personalized read before the explore
			// re-rank is reached, so all requests fall back to demographic hot
			// lists and the policy never samples — zero pulls, zero
			// attributions, zero errors. Degraded responses never explore.
			Name:         "explore-blackout",
			Seed:         1717,
			Tracked:      true,
			DisableCache: true,
			Explore:      true,
			ServeFaults:  []kvstore.FaultPhase{{FailRate: 1, KeyPrefix: "sys/"}},
		},
		{
			// Shard-loss transparency: two shard groups, and group 1's primary
			// dies permanently 800 ops into the replay. The group absorbs the
			// loss internally — the backup (which replicated every prior write
			// synchronously) promotes, writes and reads continue against it —
			// so this run's Digest AND ServeDigest must be byte-identical to
			// the same scenario unsharded and fault-free (the shard-loss
			// digest test runs both). Fully serialized for that comparison;
			// cache disabled so faults land at deterministic store ops.
			Name:         "shard-loss",
			Seed:         2020,
			Parallelism:  serialParallelism(),
			MaxPending:   1,
			Tracked:      true,
			Synchronous:  true,
			DisableCache: true,
			Shards:       2,
			ShardFaults: [][]kvstore.FaultPhase{
				nil, nil,
				{{Ops: 800}, {FailRate: 1}},
				nil,
			},
		},
		{
			// Live rebalance under serving traffic: slot migrations fire at
			// one third and two thirds of the request phase, with Recommend
			// reads in flight on either side. The freeze→transfer→flip
			// handoff blocks only writes, so every request must succeed, and
			// the moved state must be byte-for-byte intact: Digest and
			// ServeDigest must match the same scenario unsharded with no
			// rebalance at all (the rebalance digest test runs both).
			Name:                 "rebalance-mid-serving",
			Seed:                 2121,
			Parallelism:          serialParallelism(),
			MaxPending:           1,
			Tracked:              true,
			Synchronous:          true,
			DisableCache:         true,
			Shards:               2,
			RebalanceDuringServe: true,
			RebalanceSlots:       4,
		},
		{
			// Split-brain recovery: a second router is built on the version-1
			// map, then a mid-replay rebalance (under live write traffic —
			// writes that land in the freeze window park on the coordinator
			// and retry) moves four slots and obsoletes that map. After
			// quiescence the stale router reads every stored key: each read
			// into a moved slot draws ErrWrongServer from the old owner,
			// refreshes, and must answer correctly from the new one.
			Name:                  "split-brain",
			Seed:                  2222,
			Tracked:               true,
			Shards:                2,
			RebalanceAfterActions: 150,
			RebalanceSlots:        4,
			StaleRouter:           true,
		},
	}
}
