package sim

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"time"

	"vidrec/internal/bandit"
	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/storm"
	"vidrec/internal/topn"
	"vidrec/internal/vecmath"
)

// maxViolations caps the breaches one checker reports: a systematic bug
// would otherwise flood test output with thousands of identical lines.
const maxViolations = 25

// violations accumulates breach descriptions up to maxViolations.
type violations struct {
	list    []string
	dropped int
}

func (v *violations) addf(format string, args ...any) {
	if len(v.list) >= maxViolations {
		v.dropped++
		return
	}
	v.list = append(v.list, fmt.Sprintf(format, args...))
}

func (v *violations) result() []string {
	if v.dropped > 0 {
		v.list = append(v.list, fmt.Sprintf("(%d further violations suppressed)", v.dropped))
	}
	return v.list
}

// checkConservation verifies acker accounting: on a tracked run every
// spouted tuple's tree was acked or failed exactly once, and the acker holds
// no unresolved trees after shutdown.
func checkConservation(sc Scenario, topo *storm.Topology, rep *Report) []string {
	var v violations
	if rep.Unresolved != 0 {
		v.addf("conservation: %d tuple trees neither acked nor failed at shutdown", rep.Unresolved)
	}
	if rep.Actions > 0 && rep.Spouted == 0 {
		v.addf("conservation: %d actions replayed but spout emitted nothing", rep.Actions)
	}
	if rep.Spouted > uint64(rep.Actions) {
		v.addf("conservation: spout emitted %d tuples from %d actions", rep.Spouted, rep.Actions)
	}
	if sc.Tracked {
		if rep.Acked+rep.FailedTrees != rep.Spouted {
			v.addf("conservation: acked %d + failed %d != spouted %d", rep.Acked, rep.FailedTrees, rep.Spouted)
		}
	}
	return v.result()
}

// splitStateKey parses a store key into its component kind (the suffix after
// the namespace's last dot: "uv", "sim", "hist", ...) and record id.
// kvstore.SplitKey cannot do this: demographic group names embed ':'
// ("m:18-24:ba"), so the first ':' of a group-scoped key sits inside the
// namespace. Ids and group names never contain '.', which makes the last dot
// an unambiguous anchor.
func splitStateKey(key string) (kind, id string, ok bool) {
	dot := strings.LastIndex(key, ".")
	if dot < 0 {
		return "", "", false
	}
	rest := key[dot+1:]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return "", "", false
	}
	return rest[:colon], rest[colon+1:], true
}

// checkStore sweeps every record in the backing store and verifies it
// decodes under its namespace's schema with finite, bounded contents — the
// finite_prop_test invariant extended from the model to the full pipeline:
// whatever faults were injected, nothing unparseable or non-finite may
// reach durable state.
func checkStore(ds *dataset.Dataset, base *kvstore.Local, params core.Params, opts recommend.Options, simCfg simtable.Config) []string {
	users := make(map[string]bool, len(ds.Users()))
	for _, u := range ds.Users() {
		users[u.ID] = true
	}
	videos := make(map[string]bool, len(ds.Videos()))
	for _, vd := range ds.Videos() {
		videos[vd.Meta.ID] = true
	}

	var v violations
	base.ForEach(func(key string, val []byte) bool {
		kind, id, ok := splitStateKey(key)
		if !ok {
			v.addf("store: key %q does not parse as <ns>.<kind>:<id>", key)
			return true
		}
		switch kind {
		case "uv", "iv":
			vec, err := kvstore.DecodeFloats(val)
			if err != nil {
				v.addf("store: %s: corrupt vector: %v", key, err)
				return true
			}
			if len(vec) != params.Factors {
				v.addf("store: %s: vector has %d factors, want %d", key, len(vec), params.Factors)
			}
			checkFinite(&v, key, vec)
			if kind == "uv" && !users[id] {
				v.addf("store: %s: user vector for unknown user", key)
			}
			if kind == "iv" && !videos[id] {
				v.addf("store: %s: item vector for unknown video", key)
			}
		case "ub", "ib":
			b, err := kvstore.DecodeFloat(val)
			if err != nil {
				v.addf("store: %s: corrupt bias: %v", key, err)
				return true
			}
			checkFinite(&v, key, []float64{b})
			if kind == "ub" && !users[id] {
				v.addf("store: %s: user bias for unknown user", key)
			}
			if kind == "ib" && !videos[id] {
				v.addf("store: %s: item bias for unknown video", key)
			}
		case "meta":
			fs, err := kvstore.DecodeFloats(val)
			if err != nil {
				v.addf("store: %s: corrupt meta record: %v", key, err)
				return true
			}
			if id != "mean" {
				v.addf("store: %s: unexpected meta id %q", key, id)
			}
			if len(fs) != 2 {
				v.addf("store: %s: mean record has %d fields, want 2", key, len(fs))
			}
			checkFinite(&v, key, fs)
			if len(fs) == 2 && fs[1] < 0 {
				v.addf("store: %s: negative observation count %v", key, fs[1])
			}
		case "sim":
			entries, ok := checkStampedEntries(&v, key, val)
			if !ok {
				return true
			}
			if len(entries) > simCfg.TableSize {
				v.addf("store: %s: %d entries exceed table size %d", key, len(entries), simCfg.TableSize)
			}
			checkEntryList(&v, key, entries, videos, "video")
			if !videos[id] {
				v.addf("store: %s: similar table for unknown video", key)
			}
			for _, e := range entries {
				if e.ID == id {
					v.addf("store: %s: table lists its own video", key)
				}
			}
		case "hot":
			entries, ok := checkStampedEntries(&v, key, val)
			if !ok {
				return true
			}
			if len(entries) > opts.HotCapacity {
				v.addf("store: %s: %d entries exceed hot capacity %d", key, len(entries), opts.HotCapacity)
			}
			checkEntryList(&v, key, entries, videos, "video")
		case "hist":
			entries, err := kvstore.DecodeEntries(val)
			if err != nil {
				v.addf("store: %s: corrupt history: %v", key, err)
				return true
			}
			if len(entries) > opts.HistoryLimit {
				v.addf("store: %s: %d events exceed history limit %d", key, len(entries), opts.HistoryLimit)
			}
			if !users[id] {
				v.addf("store: %s: history for unknown user", key)
			}
			for _, e := range entries {
				if !videos[e.ID] {
					v.addf("store: %s: history references unknown video %q", key, e.ID)
				}
				// Score carries the event's UnixMilli timestamp.
				if !saneUnixMilli(int64(e.Score)) {
					v.addf("store: %s: event timestamp %v out of range", key, e.Score)
				}
			}
		case "prof":
			if !users[id] {
				v.addf("store: %s: profile for unknown user", key)
			}
		case "video":
			fields, err := kvstore.DecodeStrings(val)
			if err != nil {
				v.addf("store: %s: corrupt catalog record: %v", key, err)
				return true
			}
			if len(fields) != 2 {
				v.addf("store: %s: catalog record has %d fields, want 2", key, len(fields))
			}
			if !videos[id] {
				v.addf("store: %s: catalog record for unknown video", key)
			}
		case "q8":
			scale, qbias, data, err := kvstore.DecodeQ8Vec(val)
			if err != nil {
				v.addf("store: %s: corrupt q8 record: %v", key, err)
				return true
			}
			if len(data) != params.Factors {
				v.addf("store: %s: q8 record has %d components, want %d", key, len(data), params.Factors)
			}
			checkFinite(&v, key, []float64{scale, qbias})
			if scale < 0 {
				v.addf("store: %s: negative q8 scale %v", key, scale)
			}
			if !videos[id] {
				v.addf("store: %s: q8 record for unknown video", key)
			}
			// The quantized record must mirror the float state it derives
			// from: re-quantizing the stored item vector reproduces it bit
			// for bit, and the carried bias matches the stored item bias.
			// This is the state-level transparency proof for quantized
			// serving — StoreItem writes vector, bias and q8 record in one
			// call, so a quiesced serialized run (the only kind that enables
			// quantization) leaves them exactly consistent.
			ns := strings.TrimSuffix(key, ".q8:"+id)
			if raw, ok, _ := base.Get(context.Background(), ns+".iv:"+id); !ok {
				v.addf("store: %s: q8 record without a float item vector", key)
			} else if vec, err := kvstore.DecodeFloats(raw); err == nil {
				q := vecmath.Quantize(vec)
				if q.Scale != scale || !slices.Equal(q.Data, data) {
					v.addf("store: %s: q8 record does not re-quantize from the stored item vector", key)
				}
			}
			if raw, ok, _ := base.Get(context.Background(), ns+".ib:"+id); ok {
				if b, err := kvstore.DecodeFloat(raw); err == nil && b != qbias {
					v.addf("store: %s: q8 bias %v != stored item bias %v", key, qbias, b)
				}
			} else if qbias != 0 {
				v.addf("store: %s: q8 bias %v without a stored item bias", key, qbias)
			}
		case "bandit":
			// DecodeState runs bandit.State.Validate: finite, non-negative,
			// wins never exceeding pulls.
			_, ms, err := bandit.DecodeState(val)
			if err != nil {
				v.addf("store: %s: corrupt bandit state: %v", key, err)
				return true
			}
			if id != "arms" {
				v.addf("store: %s: unexpected bandit record id %q", key, id)
			}
			if !saneUnixMilli(ms) {
				v.addf("store: %s: bandit stamp %d out of range", key, ms)
			}
		case "battr":
			entries, err := kvstore.DecodeEntries(val)
			if err != nil {
				v.addf("store: %s: corrupt attribution record: %v", key, err)
				return true
			}
			if !users[id] {
				v.addf("store: %s: attributions for unknown user", key)
			}
			for _, e := range entries {
				if !videos[e.ID] {
					v.addf("store: %s: attribution for unknown video %q", key, e.ID)
				}
				// Score carries the arm id: integral and a real arm.
				a := bandit.Arm(e.Score)
				if float64(a) != e.Score || !a.Valid() {
					v.addf("store: %s: attribution arm %v is not a valid arm id", key, e.Score)
				}
			}
		default:
			v.addf("store: %s: unknown record kind %q", key, kind)
		}
		return true
	})
	return v.result()
}

// checkStampedEntries validates the shared timestamp+entries layout used by
// similar tables and hot lists: an 8-byte UnixMilli stamp followed by an
// encoded entry list.
func checkStampedEntries(v *violations, key string, val []byte) ([]topn.Entry, bool) {
	if len(val) < 8 {
		v.addf("store: %s: record shorter than its timestamp prefix", key)
		return nil, false
	}
	ms, err := kvstore.DecodeInt64(val[:8])
	if err != nil {
		v.addf("store: %s: corrupt timestamp: %v", key, err)
		return nil, false
	}
	if !saneUnixMilli(ms) {
		v.addf("store: %s: timestamp %d out of range", key, ms)
	}
	entries, err := kvstore.DecodeEntries(val[8:])
	if err != nil {
		v.addf("store: %s: corrupt entry list: %v", key, err)
		return nil, false
	}
	return entries, true
}

// checkEntryList validates a ranked entry list: sorted by score descending,
// no duplicate ids, every id in the known universe, every score finite.
func checkEntryList(v *violations, key string, entries []topn.Entry, universe map[string]bool, what string) {
	seen := make(map[string]bool, len(entries))
	for i, e := range entries {
		if seen[e.ID] {
			v.addf("store: %s: duplicate %s %q", key, what, e.ID)
		}
		seen[e.ID] = true
		if !universe[e.ID] {
			v.addf("store: %s: unknown %s %q", key, what, e.ID)
		}
		if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
			v.addf("store: %s: non-finite score for %q", key, e.ID)
		}
		if i > 0 && entries[i].Score > entries[i-1].Score {
			v.addf("store: %s: entries not sorted descending at index %d", key, i)
		}
	}
}

// checkFinite flags NaN or magnitude beyond core.MaxParamMagnitude.
func checkFinite(v *violations, key string, vals []float64) {
	for i, x := range vals {
		if math.IsNaN(x) || math.Abs(x) > core.MaxParamMagnitude {
			v.addf("store: %s: parameter %d is %v (bound %g)", key, i, x, float64(core.MaxParamMagnitude))
			return
		}
	}
}

// saneUnixMilli bounds a millisecond timestamp to [2000, 2100) — anything
// outside means a codec mix-up (seconds vs millis, or garbage bytes).
func saneUnixMilli(ms int64) bool {
	t := time.UnixMilli(ms)
	return t.Year() >= 2000 && t.Year() < 2100
}

// checkResults validates every served recommendation list: within the
// requested size, deduplicated, inside the catalog, finite scores, and the
// MF-ranked segment (everything before the demographic hot merge) sorted by
// predicted preference descending.
func checkResults(ds *dataset.Dataset, results []*recommend.Result, topN int) []string {
	videos := make(map[string]bool, len(ds.Videos()))
	for _, vd := range ds.Videos() {
		videos[vd.Meta.ID] = true
	}
	var v violations
	for ri, res := range results {
		if len(res.Videos) > topN {
			v.addf("results[%d]: %d entries exceed requested N=%d", ri, len(res.Videos), topN)
		}
		if res.HotMerged < 0 || res.HotMerged > len(res.Videos) {
			v.addf("results[%d]: HotMerged %d outside [0,%d]", ri, res.HotMerged, len(res.Videos))
			continue
		}
		seen := make(map[string]bool, len(res.Videos))
		for _, e := range res.Videos {
			if seen[e.ID] {
				v.addf("results[%d]: duplicate video %q", ri, e.ID)
			}
			seen[e.ID] = true
			if !videos[e.ID] {
				v.addf("results[%d]: video %q not in catalog", ri, e.ID)
			}
			if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
				v.addf("results[%d]: non-finite score for %q", ri, e.ID)
			}
		}
		if res.Explored {
			// An explored slate is composed by the policy, not sorted — its
			// contract is the arm tagging: one valid arm per slot, and
			// HotMerged counting exactly the hot-armed slots.
			if len(res.Arms) != len(res.Videos) {
				v.addf("results[%d]: %d arm tags for %d videos", ri, len(res.Arms), len(res.Videos))
			}
			hot := 0
			for _, a := range res.Arms {
				if !a.Valid() {
					v.addf("results[%d]: invalid arm %d", ri, uint8(a))
				}
				if a == bandit.ArmHot {
					hot++
				}
			}
			if len(res.Arms) == len(res.Videos) && res.HotMerged != hot {
				v.addf("results[%d]: HotMerged %d but %d hot-armed slots", ri, res.HotMerged, hot)
			}
			if res.Degraded {
				v.addf("results[%d]: response both Degraded and Explored — degraded serving must never sample", ri)
			}
		} else {
			if res.Arms != nil {
				v.addf("results[%d]: arm tags on an unexplored response", ri)
			}
			ranked := res.Videos[:len(res.Videos)-res.HotMerged]
			if !sort.SliceIsSorted(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score }) {
				v.addf("results[%d]: MF-ranked segment not sorted descending", ri)
			}
		}
		if res.Latency < 0 {
			v.addf("results[%d]: negative latency %v", ri, res.Latency)
		}
	}
	return v.result()
}

// checkLatency verifies serving-latency accounting under faults: exactly the
// successful Recommend calls are observed — errored requests return before
// the histogram, and nothing observes twice.
func checkLatency(sys *recommend.System, successes int) []string {
	var v violations
	if got := sys.Latency.Count(); got != uint64(successes) {
		v.addf("latency: histogram holds %d samples, want %d (one per successful request)", got, successes)
	}
	return v.result()
}
