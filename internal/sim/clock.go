package sim

import (
	"sync"
	"time"
)

// VirtualClock is the single time source of a simulation run. Every
// component that would otherwise consult the wall clock — the recommender's
// "now", the serving-latency measurement, the ItemPairSim TTL caches — reads
// it instead, so a scenario's behaviour is a pure function of its inputs: a
// run on a loaded CI box replays exactly like a run on an idle laptop.
//
// The clock only moves when the harness moves it: the replay source advances
// it to each action's timestamp, and the serving phase advances it
// explicitly between requests.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time // guarded by mu
}

// NewVirtualClock returns a clock frozen at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// SetAtLeast moves the clock to t if t is later than the current time —
// the replay source uses it so out-of-order action timestamps never move
// time backwards.
func (c *VirtualClock) SetAtLeast(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}
