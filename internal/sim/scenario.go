package sim

import (
	"fmt"
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/topology"
)

// Transport selects how the pipeline reaches the key-value store.
type Transport string

const (
	// TransportLocal runs against the in-process sharded store.
	TransportLocal Transport = "local"
	// TransportTCP puts the real gob-over-TCP server/client pair between
	// the pipeline and the store, with the fault injector wrapping the
	// client — dropped connections and network latency then hit the same
	// code paths a two-process deployment exercises.
	TransportTCP Transport = "tcp"
)

// BoltFault schedules a failure window for one bolt component, modelling a
// worker crash + restart: executions in the window fail their tuple trees
// (the spout's Fail hook fires — at-least-once semantics), and when the
// window closes the bolt is re-prepared from scratch, losing any in-memory
// caches exactly like a restarted task.
type BoltFault struct {
	// Bolt is the component name (topology.ComputeMFName, ...).
	Bolt string
	// AfterTuples is how many executions succeed before the crash.
	AfterTuples uint64
	// DownFor is how many executions fail while the worker is down.
	DownFor uint64
	// Delay is added to every execution (a slow bolt rather than a dead
	// one); it composes with the crash window.
	Delay time.Duration
}

// Scenario declares one end-to-end simulation: workload shape, pipeline
// configuration, fault schedule, and serving phase. The zero value is not
// runnable; use the named constructors in scenarios.go or fill at least
// Name and Seed and let defaults cover the rest.
type Scenario struct {
	Name string
	Seed uint64

	// Workload shape (dataset.Config knobs the scenarios vary).
	Users, Videos int
	Days          int
	EventsPerDay  int

	// Pipeline configuration.
	Parallelism topology.Parallelism // zero value = topology.DefaultParallelism
	QueueSize   int                  // 0 = engine default
	MaxPending  int                  // max-spout-pending; 0 = unbounded
	Tracked     bool                 // acker tracking per action
	Synchronous bool                 // single-goroutine deterministic scheduler
	Transport   Transport            // "" = TransportLocal

	// Fault schedule.
	KVFaults   []kvstore.FaultPhase
	BoltFaults []BoltFault

	// Resilient serving stack. Replicas > 1 composes that many independent
	// backends under kvstore.Replicated (write-all / read-first-healthy);
	// each backend carries its own fault injector so replicas can die
	// independently. Requires TransportLocal and, when set, per-replica
	// schedules via ReplicaFaults instead of KVFaults.
	Replicas int
	// ReplicaFaults is the per-replica fault schedule (index = replica;
	// missing or nil entries mean fault-free). Only valid with Replicas > 1.
	ReplicaFaults [][]kvstore.FaultPhase
	// Resilience, when non-nil, wraps every backend's injector with a
	// kvstore.Resilient decorator (retry/backoff/circuit-breaking) driven by
	// the virtual clock and a no-op sleep, so retry patterns replay exactly.
	Resilience *kvstore.ResilienceConfig
	// ServeFaults, when non-empty, replaces every injector's schedule right
	// before the serving phase — an outage that begins after training, the
	// degraded-serving drill. Phase op counts restart at the first serving
	// operation.
	ServeFaults []kvstore.FaultPhase

	// Sharded storage tier. Shards > 1 partitions the key space across that
	// many primary/backup shard groups (kvstore.ShardGroup) under a
	// Coordinator, and routes the pipeline through a kvstore.Sharded client.
	// Requires TransportLocal; mutually exclusive with Replicas > 1, KVFaults,
	// ReplicaFaults, and ServeFaults — shard scenarios schedule faults per
	// shard replica via ShardFaults.
	Shards int
	// ShardFaults is the per-shard-replica fault schedule, indexed by
	// group*2 + role (role 0 primary, 1 backup); missing or nil entries run
	// fault-free. Only valid with Shards > 1.
	ShardFaults [][]kvstore.FaultPhase
	// RebalanceAfterActions, when > 0, migrates RebalanceSlots slots from
	// group 0 to group 1 mid-replay, right before that action number feeds
	// the spout — an ownership move under live write traffic.
	RebalanceAfterActions int
	// RebalanceDuringServe fires the same migration twice during the serving
	// phase (at Recommends/3 and 2·Recommends/3), moving slots while reads
	// are in flight.
	RebalanceDuringServe bool
	// RebalanceSlots is how many slots each migration hook moves (default 4).
	RebalanceSlots int
	// StaleRouter builds a second Sharded client before any rebalance and,
	// after quiescence, reads every stored key through it: the client must
	// absorb ErrWrongServer redirects, refresh its map, and answer every
	// read — the split-brain recovery drill.
	StaleRouter bool

	// Serving phase: Recommends requests of size TopN after the replay.
	Recommends int
	TopN       int

	// Explore serves the request phase in bandit-exploration mode
	// (recommend.Options.Explore, Thompson sampling seeded from Seed): the
	// slate is re-ranked over the blended candidate sources and every slot
	// is attributed to its arm.
	Explore bool
	// FeedbackClicks, with Explore, simulates that many clicks on the
	// served slates after the request phase and streams them through a
	// second topology run — the BanditReward → BanditState line — so the
	// posteriors move inside the scenario. Requires Explore.
	FeedbackClicks int

	// DisableCache turns off the decoded-value read cache
	// (recommend.Options.CacheCapacity = -1). The cache never changes
	// results — the cache-transparency test runs a scenario both ways and
	// requires identical state digests — but it does change which reads
	// reach the store, so fault-injection scenarios that count on faults
	// landing at specific KV operations keep one setting per scenario.
	DisableCache bool

	// Quantized serves the request phase through the int8-quantized scoring
	// path (recommend.Options.Quantized): item vectors resolve as q8 records
	// and Eq. 2 runs on the integer kernel. Rankings may differ from the
	// float path by at most the quantization error, so quantized scenarios
	// carry their own digests rather than sharing a float scenario's.
	Quantized bool
	// ANN turns on the LSH candidate source (recommend.Options.ANN): the
	// user vector probes the hyperplane index and the hits join the
	// similar-table and hot-list candidates before ranking. The index is
	// seeded from Seed so probe results replay exactly.
	ANN bool
}

// withDefaults fills unset fields with the harness defaults: a workload
// small enough that the full matrix runs under -race in CI seconds, yet
// large enough that every namespace (models, tables, histories, hot lists)
// gets real traffic.
func (s Scenario) withDefaults() (Scenario, error) {
	if s.Name == "" {
		return s, fmt.Errorf("sim: scenario must be named")
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Users <= 0 {
		s.Users = 40
	}
	if s.Videos <= 0 {
		s.Videos = 80
	}
	if s.Days <= 0 {
		s.Days = 2
	}
	if s.EventsPerDay <= 0 {
		s.EventsPerDay = 120
	}
	if (s.Parallelism == topology.Parallelism{}) {
		s.Parallelism = topology.DefaultParallelism()
	}
	if s.Parallelism.Spout != 1 {
		// One spout task keeps the replay order identical to the stream
		// order; the harness has no second stream to feed more tasks.
		return s, fmt.Errorf("sim: scenario %q needs Parallelism.Spout == 1, got %d", s.Name, s.Parallelism.Spout)
	}
	if s.Transport == "" {
		s.Transport = TransportLocal
	}
	if s.Transport != TransportLocal && s.Transport != TransportTCP {
		return s, fmt.Errorf("sim: scenario %q has unknown transport %q", s.Name, s.Transport)
	}
	if s.Replicas < 0 {
		return s, fmt.Errorf("sim: scenario %q has negative Replicas %d", s.Name, s.Replicas)
	}
	if s.Replicas > 1 && s.Transport == TransportTCP {
		// One server/client pair per replica would mean real sockets per
		// backend; the replication drills run on the local transport.
		return s, fmt.Errorf("sim: scenario %q combines Replicas > 1 with the TCP transport", s.Name)
	}
	if s.Replicas > 1 && len(s.KVFaults) > 0 {
		return s, fmt.Errorf("sim: scenario %q must schedule faults via ReplicaFaults when Replicas > 1", s.Name)
	}
	if len(s.ReplicaFaults) > 0 && s.Replicas <= 1 {
		return s, fmt.Errorf("sim: scenario %q sets ReplicaFaults without Replicas > 1", s.Name)
	}
	if len(s.ReplicaFaults) > s.Replicas {
		return s, fmt.Errorf("sim: scenario %q has %d replica fault schedules for %d replicas", s.Name, len(s.ReplicaFaults), s.Replicas)
	}
	if s.Shards < 0 || s.Shards == 1 {
		return s, fmt.Errorf("sim: scenario %q has Shards %d, want 0 or >= 2", s.Name, s.Shards)
	}
	if s.Shards > 1 {
		if s.Transport == TransportTCP {
			return s, fmt.Errorf("sim: scenario %q combines Shards with the TCP transport", s.Name)
		}
		if s.Replicas > 1 {
			return s, fmt.Errorf("sim: scenario %q combines Shards with Replicas; shard groups replicate internally", s.Name)
		}
		if len(s.KVFaults) > 0 || len(s.ReplicaFaults) > 0 || len(s.ServeFaults) > 0 {
			return s, fmt.Errorf("sim: scenario %q must schedule faults via ShardFaults when Shards > 1", s.Name)
		}
		if len(s.ShardFaults) > 2*s.Shards {
			return s, fmt.Errorf("sim: scenario %q has %d shard fault schedules for %d shard replicas", s.Name, len(s.ShardFaults), 2*s.Shards)
		}
		if s.RebalanceSlots == 0 {
			s.RebalanceSlots = 4
		}
		if s.RebalanceSlots < 0 {
			return s, fmt.Errorf("sim: scenario %q has negative RebalanceSlots %d", s.Name, s.RebalanceSlots)
		}
	} else if len(s.ShardFaults) > 0 || s.RebalanceAfterActions > 0 || s.RebalanceDuringServe || s.RebalanceSlots > 0 || s.StaleRouter {
		return s, fmt.Errorf("sim: scenario %q sets shard knobs without Shards > 1", s.Name)
	}
	if s.RebalanceAfterActions < 0 {
		return s, fmt.Errorf("sim: scenario %q has negative RebalanceAfterActions %d", s.Name, s.RebalanceAfterActions)
	}
	if s.Recommends <= 0 {
		s.Recommends = 30
	}
	if s.TopN <= 0 {
		s.TopN = 10
	}
	if s.FeedbackClicks < 0 {
		return s, fmt.Errorf("sim: scenario %q has negative FeedbackClicks %d", s.Name, s.FeedbackClicks)
	}
	if s.FeedbackClicks > 0 && !s.Explore {
		return s, fmt.Errorf("sim: scenario %q sets FeedbackClicks without Explore", s.Name)
	}
	return s, nil
}
