// Package sim is the deterministic end-to-end simulation harness: it wires
// dataset replay → storm topology (the Figure 2 train bolts) → kvstore
// (in-process, or real gob-over-TCP) → simtable → recommend, drives the
// whole assembly from a virtual clock and a seeded fault schedule, and then
// turns invariant checkers loose on the result — every stored parameter
// finite and bounded, every spouted tuple acked or failed exactly once,
// every top-N list sorted/deduped/within catalog, every served request
// accounted in the latency histogram.
//
// A run is a pure function of its Scenario: same seed ⇒ byte-identical
// encoded model state (see CanonicalState), which is what lets the scenario
// matrix double as a regression oracle for every future perf or scaling
// change. Determinism rests on three legs: the virtual clock (no component
// on the sim-covered path consults time.Now), seeded RNGs everywhere (the
// dataset stream, the storm edge ids, the fault injector — no global
// math/rand), and a fully serialized pipeline for the determinism scenarios
// (parallelism 1 + max-spout-pending 1 + tracked emission, so each action's
// tuple tree completes before the next begins).
package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"vidrec/internal/bandit"
	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/storm"
	"vidrec/internal/topology"
)

// Report is the outcome of one scenario run: raw accounting from every
// layer plus the invariant violations found. An empty Violations slice is
// the pass criterion; the counters exist so tests can assert the scenario
// actually exercised what it claims (faults were injected, trees did fail).
type Report struct {
	Scenario Scenario

	// Replay accounting.
	Actions     int    // actions pulled from the dataset stream
	Spouted     uint64 // tuples the spout emitted
	Acked       uint64 // tuple trees fully processed (tracked runs)
	FailedTrees uint64 // tuple trees failed (tracked runs)
	Unresolved  int    // trees neither acked nor failed at shutdown

	// Storage accounting (summed over every replica's injector).
	KVOps          uint64 // operations seen by the fault injectors
	InjectedFaults uint64 // operations they failed

	// Resilience accounting (summed over every replica's decorator; zero
	// when the scenario runs without Resilience).
	Retries       uint64 // attempts beyond the first
	Exhausted     uint64 // operations failed after the full retry budget
	BreakerTrips  uint64 // closed→open transitions
	BreakerResets uint64 // half-open→closed transitions
	ReadFallbacks uint64 // replicated reads answered by a non-primary backend
	WriteSkips    uint64 // per-backend write failures absorbed by write-all

	// Sharding accounting (zero unless the scenario sets Shards > 1).
	ShardRedirects  uint64 // client retries after ErrWrongServer
	ShardPromotes   uint64 // primary failovers across all groups
	ShardRebalances uint64 // completed slot migrations
	ShardMovedKeys  uint64 // keys carried by those migrations
	ShardSyncSkips  uint64 // backup replications skipped (replica down)
	ShardDedupHits  uint64 // duplicate client writes absorbed by CID/SeqNo dedup

	// Serving accounting.
	Recommends      int // successful Recommend calls
	RecommendErrors int // Recommend calls that returned an error
	Degraded        int // served responses that came from the demographic fallback

	// Exploration accounting, decoded from the final reward state (zero
	// unless the scenario explores): total slate slots charged to bandit
	// arms, and total reward mass credited back by the feedback phase.
	ExplorePulls float64
	ExploreWins  float64

	// Digest is the SHA-256 of the canonical encoded model state (replica 0
	// when the scenario replicates); two runs of the same scenario must
	// produce the same digest.
	Digest string

	// ReplicaDigests is each replica's state digest. On a fault-free
	// replicated run all entries match Digest; a replica that missed writes
	// during an outage diverges — visibly, here.
	ReplicaDigests []string

	// ServeDigest is the SHA-256 of every served list (ids, scores,
	// provenance counters, in request order). Digest proves the *written*
	// state matches; ServeDigest proves the *served* output does — the
	// half the read cache could corrupt without ever touching the store.
	ServeDigest string

	// Violations lists every invariant breach, empty on a healthy run.
	Violations []string
}

// Run executes one scenario end to end and returns its report. An error
// means the harness itself could not run the scenario (bad configuration,
// topology build failure); invariant breaches are reported in
// Report.Violations, not as errors.
func Run(ctx context.Context, sc Scenario) (*Report, error) {
	sc, err := sc.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg := dataset.Config{
		Seed:             sc.Seed,
		Users:            sc.Users,
		Videos:           sc.Videos,
		Types:            6,
		Factors:          4,
		Days:             sc.Days,
		EventsPerDay:     sc.EventsPerDay,
		ZipfExponent:     1.05,
		TrendDriftPerDay: 0.08,
		GroupInfluence:   0.6,
		RegisteredShare:  0.65,
		Start:            time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC),
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: generate dataset: %w", err)
	}
	vclock := NewVirtualClock(cfg.Start)

	// Storage chain, per replica: Local, optionally behind the real
	// gob-over-TCP pair (single-replica only), the fault injector, then the
	// optional Resilient decorator — faults land below the retry layer so
	// retries genuinely re-roll the injector. With Replicas > 1 the chains
	// compose under Replicated (write-all / read-first-healthy), mirroring
	// the production stack recserve assembles.
	// With Shards > 1 the stack is the sharded tier instead: per-group
	// primary/backup chains under a Coordinator, fronted by the Sharded
	// router (shard.go). The replica-chain machinery below is skipped.
	var cluster *shardCluster
	var chains []replicaChain
	var repl *kvstore.Replicated
	var store kvstore.Store
	if sc.Shards > 1 {
		cluster, err = newShardCluster(sc, vclock)
		if err != nil {
			return nil, err
		}
		store = cluster.router
	}

	replicas := sc.Replicas
	if replicas < 1 {
		replicas = 1
	}
	if cluster == nil {
		chains = make([]replicaChain, replicas)
	}
	backends := make([]kvstore.Store, replicas)
	for i := 0; cluster == nil && i < replicas; i++ {
		base := kvstore.NewLocal(32)
		var store kvstore.Store = base
		if sc.Transport == TransportTCP {
			server, err := kvstore.NewServer(ctx, base, "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("sim: start kv server: %w", err)
			}
			defer func() {
				_ = server.Close() // shutdown path; Close errors carry no state
			}()
			client, err := kvstore.DialContext(ctx, server.Addr())
			if err != nil {
				return nil, fmt.Errorf("sim: dial kv server: %w", err)
			}
			defer func() {
				_ = client.Close() // shutdown path; Close errors carry no state
			}()
			store = client
		}
		faulty := kvstore.NewFaulty(store, replicaFaultSeed(sc.Seed, i))
		chains[i] = replicaChain{base: base, faulty: faulty}
		backends[i] = faulty
		if sc.Resilience != nil {
			r := kvstore.NewResilient(faulty, *sc.Resilience, replicaFaultSeed(sc.Seed, i)^0xB0FF)
			// The breaker's cooldown follows the virtual clock, and retry
			// waits are no-ops: sleeping on backoff.Delay would either block
			// real time (slow) or advance the virtual clock (diverging the
			// clock trajectory between faulted and fault-free runs, breaking
			// the failover digest comparison). Breaker recovery timing comes
			// from the action timestamps instead, which dwarf any cooldown.
			r.SetClock(vclock.Now)
			r.SetSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
			chains[i].resilient = r
			backends[i] = r
		}
	}
	if cluster == nil {
		store = backends[0]
		if replicas > 1 {
			var err error
			repl, err = kvstore.NewReplicated(backends...)
			if err != nil {
				return nil, fmt.Errorf("sim: compose replicated store: %w", err)
			}
			store = repl
		}
	}

	params := core.DefaultParams()
	params.Factors = 8
	opts := recommend.DefaultOptions()
	if sc.DisableCache {
		opts.CacheCapacity = -1
	}
	if sc.Explore {
		opts.Explore = true
		opts.ExploreSeed = sc.Seed ^ 0xBA17D
	}
	if sc.Quantized {
		opts.Quantized = true
	}
	if sc.ANN {
		opts.ANN = true
		opts.ANNSeed = sc.Seed ^ 0xA55
	}
	sys, err := recommend.NewSystem(store, params, simtable.DefaultConfig(), opts)
	if err != nil {
		return nil, fmt.Errorf("sim: build system: %w", err)
	}
	sys.SetClock(vclock.Now)
	sys.SetWallClock(vclock.Now)

	// Seed catalog and profiles while the injector is quiet, then arm the
	// schedule so phase op-counts start at the first replay operation.
	if err := ds.FillCatalog(ctx, sys.Catalog); err != nil {
		return nil, fmt.Errorf("sim: fill catalog: %w", err)
	}
	if err := ds.FillProfiles(ctx, sys.Profiles); err != nil {
		return nil, fmt.Errorf("sim: fill profiles: %w", err)
	}
	if cluster != nil {
		cluster.arm(sc)
	}
	for i := range chains {
		chains[i].faulty.SetSchedule(replicaSchedule(sc, i))
	}

	// Mid-replay rebalance: the hook fires between two actions (after the
	// Nth action's tuple tree, before the N+1th feeds the spout on the
	// serialized scenarios), so the migration runs under live write
	// traffic at a deterministic point in the stream.
	var rebalanceHook func()
	if cluster != nil && sc.RebalanceAfterActions > 0 {
		rebalanceHook = func() { cluster.moveSlots(ctx, sc.RebalanceSlots) }
	}
	src := &clockSource{stream: ds.Stream(), clock: vclock,
		after: sc.RebalanceAfterActions, hook: rebalanceHook}
	topo, err := topology.BuildWithOptions(sys,
		func(int) topology.Source { return src },
		sc.Parallelism,
		topology.Options{
			Tracked:     sc.Tracked,
			QueueSize:   sc.QueueSize,
			MaxPending:  sc.MaxPending,
			Synchronous: sc.Synchronous,
			Seed:        sc.Seed ^ 0xED6E,
			CacheClock:  vclock.Now,
			WrapBolt:    boltWrapper(sc.BoltFaults),
		})
	if err != nil {
		return nil, fmt.Errorf("sim: build topology: %w", err)
	}
	if err := topo.Run(ctx); err != nil {
		return nil, fmt.Errorf("sim: topology run: %w", err)
	}

	rep := &Report{Scenario: sc, Actions: src.count()}
	spout, err := topo.MetricsFor(topology.SpoutName)
	if err != nil {
		return nil, err
	}
	rep.Spouted = spout.Emitted
	rep.Acked = spout.Acked
	rep.FailedTrees = spout.FailedTrees
	rep.Unresolved = topo.UnresolvedTrees()

	// Serving-phase outage, if scheduled: SetSchedule resets each injector's
	// since-schedule op counter, so bank the replay ops first (Injected() is
	// cumulative and needs no banking).
	if len(sc.ServeFaults) > 0 {
		for i := range chains {
			rep.KVOps += chains[i].faulty.Ops()
			chains[i].faulty.SetSchedule(sc.ServeFaults)
		}
	}

	// Serving phase: deterministic request sequence over the universe,
	// the virtual clock ticking between requests.
	vclock.Advance(time.Minute)
	users := ds.Users()
	videos := ds.Videos()
	results := make([]*recommend.Result, 0, sc.Recommends)
	servedUsers := make([]string, 0, sc.Recommends)
	for i := 0; i < sc.Recommends; i++ {
		if cluster != nil && sc.RebalanceDuringServe && i > 0 &&
			(i == sc.Recommends/3 || i == 2*sc.Recommends/3) {
			// Slot migration with requests in flight either side of it: the
			// freeze→transfer→flip handoff must never fail a read, so the
			// RecommendErrors count below doubles as the assertion.
			cluster.moveSlots(ctx, sc.RebalanceSlots)
		}
		req := recommend.Request{UserID: users[i%len(users)].ID, N: sc.TopN}
		if i%2 == 1 {
			req.CurrentVideo = videos[i%len(videos)].Meta.ID
		}
		res, err := sys.Recommend(ctx, req)
		if err != nil {
			rep.RecommendErrors++
		} else {
			if res.Degraded {
				rep.Degraded++
			}
			results = append(results, res)
			servedUsers = append(servedUsers, req.UserID)
		}
		vclock.Advance(time.Second)
	}
	rep.Recommends = len(results)

	// Feedback phase (Explore with FeedbackClicks): simulated clicks on the
	// served slates stream through a second topology run, exercising the
	// BanditReward → BanditState line the way production feedback would.
	// Clicks walk the slates breadth-first — every slate's first slot, then
	// every second slot — so the credit spreads across requests.
	if sc.FeedbackClicks > 0 {
		clicks := make([]feedback.Action, 0, sc.FeedbackClicks)
		for j := 0; len(clicks) < sc.FeedbackClicks; j++ {
			added := false
			for i, res := range results {
				if len(clicks) >= sc.FeedbackClicks {
					break
				}
				if j >= len(res.Videos) {
					continue
				}
				vclock.Advance(time.Second)
				clicks = append(clicks, feedback.Action{
					UserID:    servedUsers[i],
					VideoID:   res.Videos[j].ID,
					Type:      feedback.Click,
					Timestamp: vclock.Now(),
				})
				added = true
			}
			if !added {
				break // every slate fully clicked through
			}
		}
		fbTopo, err := topology.BuildWithOptions(sys,
			func(int) topology.Source { return topology.SliceSource(clicks) },
			sc.Parallelism,
			topology.Options{
				Tracked:     sc.Tracked,
				QueueSize:   sc.QueueSize,
				MaxPending:  sc.MaxPending,
				Synchronous: sc.Synchronous,
				Seed:        sc.Seed ^ 0xFEED,
				CacheClock:  vclock.Now,
				WrapBolt:    boltWrapper(sc.BoltFaults),
			})
		if err != nil {
			return nil, fmt.Errorf("sim: build feedback topology: %w", err)
		}
		if err := fbTopo.Run(ctx); err != nil {
			return nil, fmt.Errorf("sim: feedback topology run: %w", err)
		}
		rep.Actions += len(clicks)
		fbSpout, err := fbTopo.MetricsFor(topology.SpoutName)
		if err != nil {
			return nil, err
		}
		rep.Spouted += fbSpout.Emitted
		rep.Acked += fbSpout.Acked
		rep.FailedTrees += fbSpout.FailedTrees
		rep.Unresolved += fbTopo.UnresolvedTrees()
	}
	for i := range chains {
		rep.KVOps += chains[i].faulty.Ops()
		rep.InjectedFaults += chains[i].faulty.Injected()
		if r := chains[i].resilient; r != nil {
			s := r.Stats()
			rep.Retries += s.Retries
			rep.Exhausted += s.Exhausted
			rep.BreakerTrips += s.Breaker.Trips
			rep.BreakerResets += s.Breaker.Resets
		}
		rep.ReplicaDigests = append(rep.ReplicaDigests, StateDigest(chains[i].base))
	}
	if repl != nil {
		s := repl.Stats()
		rep.ReadFallbacks = s.ReadFallbacks
		rep.WriteSkips = s.WriteSkips
	}
	if cluster != nil {
		for gi := range cluster.faulties {
			for _, f := range cluster.faulties[gi] {
				rep.KVOps += f.Ops()
				rep.InjectedFaults += f.Injected()
			}
		}
		for _, r := range cluster.resilient {
			s := r.Stats()
			rep.Retries += s.Retries
			rep.Exhausted += s.Exhausted
			rep.BreakerTrips += s.Breaker.Trips
			rep.BreakerResets += s.Breaker.Resets
		}
		for _, g := range cluster.groups {
			gs := g.Stats()
			rep.ShardPromotes += gs.Promotes
			rep.ShardSyncSkips += gs.SyncSkips
			rep.ShardDedupHits += gs.DedupHits
			rep.ReadFallbacks += gs.ReadFallbacks
		}
		rep.ShardRedirects = cluster.router.Stats().Redirects
		if cluster.stale != nil {
			rep.ShardRedirects += cluster.stale.Stats().Redirects
		}
		cs := cluster.coord.Stats()
		rep.ShardRebalances = cs.Rebalances
		rep.ShardMovedKeys = cs.MovedKeys
		// ReplicaDigests carries each group's acting-primary digest; on a
		// sharded run the entries are per-shard partitions, not copies.
		rep.ReplicaDigests = cluster.groupDigests()
		rep.Violations = append(rep.Violations, cluster.hookViolations()...)
		rep.Violations = append(rep.Violations, cluster.probeStale(ctx)...)
	}

	// The authoritative state for digests, checkers, and explore accounting:
	// replica 0's base unsharded, the merged union of every group's acting
	// primary when sharded (disjoint slots make the union exactly the state
	// an unpartitioned run holds — the digest tests pin this).
	var authBase *kvstore.Local
	if cluster != nil {
		authBase, err = cluster.merged(ctx)
		if err != nil {
			return nil, err
		}
	} else {
		authBase = chains[0].base
	}

	// Explore accounting: decode the final reward state straight off the
	// authoritative state. A missing record means nothing explored — the
	// reward-starvation and blackout expectations assert on exactly that.
	if raw, ok, err := authBase.Get(ctx, kvstore.Key("sys.bandit", "arms")); err == nil && ok {
		if st, _, err := bandit.DecodeState(raw); err == nil {
			for a := 0; a < bandit.NumArms; a++ {
				rep.ExplorePulls += st.Pulls[a]
				rep.ExploreWins += st.Wins[a]
			}
		}
	}

	rep.Violations = append(rep.Violations, checkConservation(sc, topo, rep)...)
	rep.Violations = append(rep.Violations, checkStore(ds, authBase, params, opts, simtable.DefaultConfig())...)
	rep.Violations = append(rep.Violations, checkResults(ds, results, sc.TopN)...)
	rep.Violations = append(rep.Violations, checkLatency(sys, len(results))...)

	if cluster != nil {
		rep.Digest = StateDigest(authBase)
	} else {
		rep.Digest = rep.ReplicaDigests[0]
	}
	rep.ServeDigest = serveDigest(results)
	return rep, nil
}

// replicaChain is one replica's storage stack, kept by layer so the harness
// can schedule faults (faulty), read resilience counters (resilient), and
// digest state (base) independently of how the layers compose.
type replicaChain struct {
	base      *kvstore.Local
	faulty    *kvstore.Faulty
	resilient *kvstore.Resilient // nil unless the scenario sets Resilience
}

// replicaFaultSeed derives replica i's injector seed. Replica 0 keeps the
// legacy single-store seed (sc.Seed ^ 0x5EED) so every pre-replication
// scenario digest is unchanged; later replicas mix in a Weyl increment.
func replicaFaultSeed(seed uint64, i int) uint64 {
	return seed ^ 0x5EED ^ (uint64(i) * 0x9E3779B97F4A7C15)
}

// replicaSchedule picks replica i's replay-phase fault schedule: ReplicaFaults
// by index when replicated, the legacy KVFaults for the lone replica
// otherwise. Indices past the end of ReplicaFaults run fault-free.
func replicaSchedule(sc Scenario, i int) []kvstore.FaultPhase {
	if len(sc.ReplicaFaults) > 0 {
		if i < len(sc.ReplicaFaults) {
			return sc.ReplicaFaults[i]
		}
		return nil
	}
	if i == 0 {
		return sc.KVFaults
	}
	return nil
}

// serveDigest canonically hashes the serving phase's output: every result's
// provenance counters and ranked (id, score) pairs, in request order. Scores
// are rendered with %.17g, enough digits to round-trip any float64, so two
// digests match only on bit-identical served lists.
func serveDigest(results []*recommend.Result) string {
	h := sha256.New()
	for _, r := range results {
		fmt.Fprintf(h, "%d|%d|%d|%t|%t|", r.Seeds, r.Candidates, r.HotMerged, r.Degraded, r.Explored)
		for _, e := range r.Videos {
			fmt.Fprintf(h, "%s=%.17g;", e.ID, e.Score)
		}
		for _, a := range r.Arms {
			fmt.Fprintf(h, "a%d;", uint8(a))
		}
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// clockSource feeds the spout from the dataset stream, advancing the
// virtual clock to each action's timestamp so pipeline time follows replay
// time instead of wall time.
type clockSource struct {
	mu      sync.Mutex
	stream  *dataset.Stream // guarded by mu
	clock   *VirtualClock
	actions int    // guarded by mu
	after   int    // fire hook once when this many actions have been drawn
	hook    func() // guarded by mu (fired at most once, under the action count check)
}

// Next implements topology.Source.
func (s *clockSource) Next() (feedback.Action, bool) {
	s.mu.Lock()
	var fire func()
	if s.hook != nil && s.actions >= s.after {
		fire, s.hook = s.hook, nil
	}
	s.mu.Unlock()
	if fire != nil {
		// Run outside the source lock: the hook reaches into the storage
		// tier (slot rebalance) and must not nest under mu.
		fire()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.stream.Next()
	if !ok {
		return feedback.Action{}, false
	}
	s.actions++
	s.clock.SetAtLeast(a.Timestamp)
	return a, true
}

func (s *clockSource) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.actions
}

// errBoltDown is returned by executions inside a scheduled crash window.
var errBoltDown = fmt.Errorf("sim: bolt worker down (scheduled fault)")

// boltWrapper builds the topology WrapBolt hook for the scenario's bolt
// fault schedule, or nil when there is none.
func boltWrapper(faults []BoltFault) func(string, storm.Bolt) storm.Bolt {
	if len(faults) == 0 {
		return nil
	}
	return func(name string, inner storm.Bolt) storm.Bolt {
		for _, f := range faults {
			if f.Bolt == name {
				return &faultyBolt{inner: inner, cfg: f}
			}
		}
		return inner
	}
}

// faultyBolt decorates one bolt task with a crash window and an optional
// per-tuple delay. Executions inside the window fail their tuple trees —
// the spout sees Fail, at-least-once semantics — and the first execution
// after the window re-prepares the inner bolt, modelling a restarted worker
// that lost its in-memory caches.
type faultyBolt struct {
	inner storm.Bolt
	cfg   BoltFault
	n     uint64
	down  bool
	cctx  *storm.Context
	out   *storm.BoltCollector
}

func (b *faultyBolt) Prepare(cctx *storm.Context, out *storm.BoltCollector) error {
	b.cctx, b.out = cctx, out
	return b.inner.Prepare(cctx, out)
}

func (b *faultyBolt) Execute(t *storm.Tuple) error {
	if b.cfg.Delay > 0 {
		time.Sleep(b.cfg.Delay)
	}
	b.n++
	if b.cfg.DownFor > 0 && b.n > b.cfg.AfterTuples && b.n <= b.cfg.AfterTuples+b.cfg.DownFor {
		b.down = true
		return errBoltDown
	}
	if b.down {
		// The worker comes back: a restarted task runs Prepare afresh and
		// starts with cold caches.
		if err := b.inner.Cleanup(); err != nil {
			return err
		}
		if err := b.inner.Prepare(b.cctx, b.out); err != nil {
			return err
		}
		b.down = false
	}
	return b.inner.Execute(t)
}

func (b *faultyBolt) Cleanup() error { return b.inner.Cleanup() }
