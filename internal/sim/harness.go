// Package sim is the deterministic end-to-end simulation harness: it wires
// dataset replay → storm topology (the Figure 2 train bolts) → kvstore
// (in-process, or real gob-over-TCP) → simtable → recommend, drives the
// whole assembly from a virtual clock and a seeded fault schedule, and then
// turns invariant checkers loose on the result — every stored parameter
// finite and bounded, every spouted tuple acked or failed exactly once,
// every top-N list sorted/deduped/within catalog, every served request
// accounted in the latency histogram.
//
// A run is a pure function of its Scenario: same seed ⇒ byte-identical
// encoded model state (see CanonicalState), which is what lets the scenario
// matrix double as a regression oracle for every future perf or scaling
// change. Determinism rests on three legs: the virtual clock (no component
// on the sim-covered path consults time.Now), seeded RNGs everywhere (the
// dataset stream, the storm edge ids, the fault injector — no global
// math/rand), and a fully serialized pipeline for the determinism scenarios
// (parallelism 1 + max-spout-pending 1 + tracked emission, so each action's
// tuple tree completes before the next begins).
package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/storm"
	"vidrec/internal/topology"
)

// Report is the outcome of one scenario run: raw accounting from every
// layer plus the invariant violations found. An empty Violations slice is
// the pass criterion; the counters exist so tests can assert the scenario
// actually exercised what it claims (faults were injected, trees did fail).
type Report struct {
	Scenario Scenario

	// Replay accounting.
	Actions     int    // actions pulled from the dataset stream
	Spouted     uint64 // tuples the spout emitted
	Acked       uint64 // tuple trees fully processed (tracked runs)
	FailedTrees uint64 // tuple trees failed (tracked runs)
	Unresolved  int    // trees neither acked nor failed at shutdown

	// Storage accounting.
	KVOps          uint64 // operations seen by the fault injector
	InjectedFaults uint64 // operations it failed

	// Serving accounting.
	Recommends      int // successful Recommend calls
	RecommendErrors int // Recommend calls that returned an error

	// Digest is the SHA-256 of the canonical encoded model state; two runs
	// of the same scenario must produce the same digest.
	Digest string

	// ServeDigest is the SHA-256 of every served list (ids, scores,
	// provenance counters, in request order). Digest proves the *written*
	// state matches; ServeDigest proves the *served* output does — the
	// half the read cache could corrupt without ever touching the store.
	ServeDigest string

	// Violations lists every invariant breach, empty on a healthy run.
	Violations []string
}

// Run executes one scenario end to end and returns its report. An error
// means the harness itself could not run the scenario (bad configuration,
// topology build failure); invariant breaches are reported in
// Report.Violations, not as errors.
func Run(ctx context.Context, sc Scenario) (*Report, error) {
	sc, err := sc.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg := dataset.Config{
		Seed:             sc.Seed,
		Users:            sc.Users,
		Videos:           sc.Videos,
		Types:            6,
		Factors:          4,
		Days:             sc.Days,
		EventsPerDay:     sc.EventsPerDay,
		ZipfExponent:     1.05,
		TrendDriftPerDay: 0.08,
		GroupInfluence:   0.6,
		RegisteredShare:  0.65,
		Start:            time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC),
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: generate dataset: %w", err)
	}
	vclock := NewVirtualClock(cfg.Start)

	// Storage chain: Local, optionally behind the real gob-over-TCP pair,
	// with the fault injector outermost so faults hit whichever transport
	// the scenario chose.
	base := kvstore.NewLocal(32)
	var store kvstore.Store = base
	if sc.Transport == TransportTCP {
		server, err := kvstore.NewServer(ctx, base, "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("sim: start kv server: %w", err)
		}
		defer func() {
			_ = server.Close() // shutdown path; Close errors carry no state
		}()
		client, err := kvstore.DialContext(ctx, server.Addr())
		if err != nil {
			return nil, fmt.Errorf("sim: dial kv server: %w", err)
		}
		defer func() {
			_ = client.Close() // shutdown path; Close errors carry no state
		}()
		store = client
	}
	faulty := kvstore.NewFaulty(store, sc.Seed^0x5EED)

	params := core.DefaultParams()
	params.Factors = 8
	opts := recommend.DefaultOptions()
	if sc.DisableCache {
		opts.CacheCapacity = -1
	}
	sys, err := recommend.NewSystem(faulty, params, simtable.DefaultConfig(), opts)
	if err != nil {
		return nil, fmt.Errorf("sim: build system: %w", err)
	}
	sys.SetClock(vclock.Now)
	sys.SetWallClock(vclock.Now)

	// Seed catalog and profiles while the injector is quiet, then arm the
	// schedule so phase op-counts start at the first replay operation.
	if err := ds.FillCatalog(ctx, sys.Catalog); err != nil {
		return nil, fmt.Errorf("sim: fill catalog: %w", err)
	}
	if err := ds.FillProfiles(ctx, sys.Profiles); err != nil {
		return nil, fmt.Errorf("sim: fill profiles: %w", err)
	}
	faulty.SetSchedule(sc.KVFaults)

	src := &clockSource{stream: ds.Stream(), clock: vclock}
	topo, err := topology.BuildWithOptions(sys,
		func(int) topology.Source { return src },
		sc.Parallelism,
		topology.Options{
			Tracked:     sc.Tracked,
			QueueSize:   sc.QueueSize,
			MaxPending:  sc.MaxPending,
			Synchronous: sc.Synchronous,
			Seed:        sc.Seed ^ 0xED6E,
			CacheClock:  vclock.Now,
			WrapBolt:    boltWrapper(sc.BoltFaults),
		})
	if err != nil {
		return nil, fmt.Errorf("sim: build topology: %w", err)
	}
	if err := topo.Run(ctx); err != nil {
		return nil, fmt.Errorf("sim: topology run: %w", err)
	}

	rep := &Report{Scenario: sc, Actions: src.count()}
	spout, err := topo.MetricsFor(topology.SpoutName)
	if err != nil {
		return nil, err
	}
	rep.Spouted = spout.Emitted
	rep.Acked = spout.Acked
	rep.FailedTrees = spout.FailedTrees
	rep.Unresolved = topo.UnresolvedTrees()

	// Serving phase: deterministic request sequence over the universe,
	// the virtual clock ticking between requests.
	vclock.Advance(time.Minute)
	users := ds.Users()
	videos := ds.Videos()
	results := make([]*recommend.Result, 0, sc.Recommends)
	for i := 0; i < sc.Recommends; i++ {
		req := recommend.Request{UserID: users[i%len(users)].ID, N: sc.TopN}
		if i%2 == 1 {
			req.CurrentVideo = videos[i%len(videos)].Meta.ID
		}
		res, err := sys.Recommend(ctx, req)
		if err != nil {
			rep.RecommendErrors++
		} else {
			results = append(results, res)
		}
		vclock.Advance(time.Second)
	}
	rep.Recommends = len(results)
	rep.KVOps = faulty.Ops()
	rep.InjectedFaults = faulty.Injected()

	// Invariant checkers.
	rep.Violations = append(rep.Violations, checkConservation(sc, topo, rep)...)
	rep.Violations = append(rep.Violations, checkStore(ds, base, params, opts, simtable.DefaultConfig())...)
	rep.Violations = append(rep.Violations, checkResults(ds, results, sc.TopN)...)
	rep.Violations = append(rep.Violations, checkLatency(sys, len(results))...)

	rep.Digest = StateDigest(base)
	rep.ServeDigest = serveDigest(results)
	return rep, nil
}

// serveDigest canonically hashes the serving phase's output: every result's
// provenance counters and ranked (id, score) pairs, in request order. Scores
// are rendered with %.17g, enough digits to round-trip any float64, so two
// digests match only on bit-identical served lists.
func serveDigest(results []*recommend.Result) string {
	h := sha256.New()
	for _, r := range results {
		fmt.Fprintf(h, "%d|%d|%d|", r.Seeds, r.Candidates, r.HotMerged)
		for _, e := range r.Videos {
			fmt.Fprintf(h, "%s=%.17g;", e.ID, e.Score)
		}
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// clockSource feeds the spout from the dataset stream, advancing the
// virtual clock to each action's timestamp so pipeline time follows replay
// time instead of wall time.
type clockSource struct {
	mu      sync.Mutex
	stream  *dataset.Stream // guarded by mu
	clock   *VirtualClock
	actions int // guarded by mu
}

// Next implements topology.Source.
func (s *clockSource) Next() (feedback.Action, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.stream.Next()
	if !ok {
		return feedback.Action{}, false
	}
	s.actions++
	s.clock.SetAtLeast(a.Timestamp)
	return a, true
}

func (s *clockSource) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.actions
}

// errBoltDown is returned by executions inside a scheduled crash window.
var errBoltDown = fmt.Errorf("sim: bolt worker down (scheduled fault)")

// boltWrapper builds the topology WrapBolt hook for the scenario's bolt
// fault schedule, or nil when there is none.
func boltWrapper(faults []BoltFault) func(string, storm.Bolt) storm.Bolt {
	if len(faults) == 0 {
		return nil
	}
	return func(name string, inner storm.Bolt) storm.Bolt {
		for _, f := range faults {
			if f.Bolt == name {
				return &faultyBolt{inner: inner, cfg: f}
			}
		}
		return inner
	}
}

// faultyBolt decorates one bolt task with a crash window and an optional
// per-tuple delay. Executions inside the window fail their tuple trees —
// the spout sees Fail, at-least-once semantics — and the first execution
// after the window re-prepares the inner bolt, modelling a restarted worker
// that lost its in-memory caches.
type faultyBolt struct {
	inner storm.Bolt
	cfg   BoltFault
	n     uint64
	down  bool
	cctx  *storm.Context
	out   *storm.BoltCollector
}

func (b *faultyBolt) Prepare(cctx *storm.Context, out *storm.BoltCollector) error {
	b.cctx, b.out = cctx, out
	return b.inner.Prepare(cctx, out)
}

func (b *faultyBolt) Execute(t *storm.Tuple) error {
	if b.cfg.Delay > 0 {
		time.Sleep(b.cfg.Delay)
	}
	b.n++
	if b.cfg.DownFor > 0 && b.n > b.cfg.AfterTuples && b.n <= b.cfg.AfterTuples+b.cfg.DownFor {
		b.down = true
		return errBoltDown
	}
	if b.down {
		// The worker comes back: a restarted task runs Prepare afresh and
		// starts with cold caches.
		if err := b.inner.Cleanup(); err != nil {
			return err
		}
		if err := b.inner.Prepare(b.cctx, b.out); err != nil {
			return err
		}
		b.down = false
	}
	return b.inner.Execute(t)
}

func (b *faultyBolt) Cleanup() error { return b.inner.Cleanup() }
