package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"vidrec/internal/kvstore"
)

// CanonicalState serializes the full contents of a Local store into a
// byte string that is independent of map iteration order: entries sorted by
// key, each key and value length-prefixed (uvarint) so the encoding is
// unambiguous. Two runs of the same scenario must produce identical
// canonical state — this is the replay-determinism oracle.
//
// Local.WriteSnapshot is NOT usable for this: it walks shard maps in Go's
// randomized iteration order, so two snapshots of identical state differ
// byte-wise.
func CanonicalState(l *kvstore.Local) []byte {
	type kv struct {
		k string
		v []byte
	}
	var all []kv
	l.ForEach(func(key string, val []byte) bool {
		cp := make([]byte, len(val))
		copy(cp, val)
		all = append(all, kv{k: key, v: cp})
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })

	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, e := range all {
		n := binary.PutUvarint(tmp[:], uint64(len(e.k)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, e.k...)
		n = binary.PutUvarint(tmp[:], uint64(len(e.v)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, e.v...)
	}
	return buf
}

// StateDigest returns the hex SHA-256 of CanonicalState — a compact handle
// for "these two runs produced the same model".
func StateDigest(l *kvstore.Local) string {
	sum := sha256.Sum256(CanonicalState(l))
	return hex.EncodeToString(sum[:])
}
