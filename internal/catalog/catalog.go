// Package catalog stores video metadata: the fine-grained type every video
// carries in Tencent Video's category system (§4.2.2) and the full video
// length that PlayTime weighting needs (Eq. 6).
//
// Like all pipeline state, the catalog lives in the shared key-value store
// so every topology worker and the recommendation service see one copy.
package catalog

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
)

// Video is one catalog record.
type Video struct {
	// ID is the site-wide video identifier.
	ID string
	// Type is the fine-grained category ("movie.action", "news.sports",
	// ...). Type equality defines the type similarity of Eq. 10.
	Type string
	// Length is the full duration of the video.
	Length time.Duration
}

// Catalog is a kvstore-backed video metadata table.
type Catalog struct {
	kv    kvstore.Store
	ns    string
	cache *objcache.Cache // nil disables the decoded-record read cache
}

// SetCache attaches a decoded-value read cache for catalog records. The
// cache must wrap the same store via objcache.WrapStore so Put invalidates
// it. Records are small value structs, returned by value — no aliasing.
func (c *Catalog) SetCache(cc *objcache.Cache) { c.cache = cc }

// New returns a catalog stored under the given namespace.
func New(name string, kv kvstore.Store) (*Catalog, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: name must not be empty")
	}
	if kv == nil {
		return nil, fmt.Errorf("catalog: store must not be nil")
	}
	return &Catalog{kv: kv, ns: name + ".video"}, nil
}

// Put inserts or replaces a video record.
func (c *Catalog) Put(ctx context.Context, v Video) error {
	if v.ID == "" {
		return fmt.Errorf("catalog: video id must not be empty")
	}
	enc := kvstore.EncodeStrings([]string{v.Type, strconv.FormatInt(int64(v.Length/time.Millisecond), 10)})
	if err := c.kv.Set(ctx, kvstore.Key(c.ns, v.ID), enc); err != nil {
		return fmt.Errorf("catalog: put %s: %w", v.ID, err)
	}
	return nil
}

// Get fetches a video record, reporting whether it exists.
func (c *Catalog) Get(ctx context.Context, id string) (Video, bool, error) {
	key := kvstore.Key(c.ns, id)
	return objcache.Cached(c.cache, key, func() (Video, bool, error) {
		raw, ok, err := c.kv.Get(ctx, key)
		if err != nil {
			return Video{}, false, fmt.Errorf("catalog: get %s: %w", id, err)
		}
		if !ok {
			return Video{}, false, nil
		}
		fields, err := kvstore.DecodeStrings(raw)
		if err != nil || len(fields) != 2 {
			return Video{}, false, fmt.Errorf("catalog: corrupt record for %s: %v", id, err)
		}
		ms, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Video{}, false, fmt.Errorf("catalog: corrupt length for %s: %w", id, err)
		}
		return Video{ID: id, Type: fields[0], Length: time.Duration(ms) * time.Millisecond}, true, nil
	})
}

// Type returns the video's category, or "" when the video is unknown —
// unknown types never match anything under Eq. 10, which is the right
// cold-start behaviour.
func (c *Catalog) Type(ctx context.Context, id string) (string, error) {
	v, ok, err := c.Get(ctx, id)
	if err != nil || !ok {
		return "", err
	}
	return v.Type, nil
}
