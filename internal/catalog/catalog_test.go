package catalog

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/kvstore"
)

func newCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := New("t", kvstore.NewLocal(4))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", kvstore.NewLocal(1)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("c", nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := newCatalog(t)
	want := Video{ID: "v1", Type: "movie.action", Length: 95 * time.Minute}
	if err := c.Put(context.Background(), want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(context.Background(), "v1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if got != want {
		t.Errorf("Get = %+v, want %+v", got, want)
	}
}

func TestGetMissing(t *testing.T) {
	c := newCatalog(t)
	_, ok, err := c.Get(context.Background(), "nope")
	if err != nil || ok {
		t.Errorf("Get(missing) = %v, %v; want false, nil", ok, err)
	}
}

func TestPutRejectsEmptyID(t *testing.T) {
	c := newCatalog(t)
	if err := c.Put(context.Background(), Video{Type: "x"}); err == nil {
		t.Error("empty id accepted")
	}
}

func TestPutReplaces(t *testing.T) {
	c := newCatalog(t)
	c.Put(context.Background(), Video{ID: "v1", Type: "old", Length: time.Minute})
	c.Put(context.Background(), Video{ID: "v1", Type: "new", Length: 2 * time.Minute})
	got, _, _ := c.Get(context.Background(), "v1")
	if got.Type != "new" || got.Length != 2*time.Minute {
		t.Errorf("after replace Get = %+v", got)
	}
}

func TestTypeLookup(t *testing.T) {
	c := newCatalog(t)
	c.Put(context.Background(), Video{ID: "v1", Type: "tv.drama", Length: time.Hour})
	if typ, err := c.Type(context.Background(), "v1"); err != nil || typ != "tv.drama" {
		t.Errorf("Type(v1) = %q, %v", typ, err)
	}
	if typ, err := c.Type(context.Background(), "unknown"); err != nil || typ != "" {
		t.Errorf("Type(unknown) = %q, %v; want empty", typ, err)
	}
}
