package kvstore

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"slices"
	"testing"

	"vidrec/internal/topn"
	"vidrec/internal/vecmath"
)

// The fuzz targets cover the two decode surfaces that face untrusted bytes:
// the value codecs (anything read back from a store another process wrote)
// and the gob frames of the TCP transport. The contract under fuzzing is the
// same everywhere: arbitrary input may be rejected with an error but must
// never panic, and anything that decodes successfully must survive an
// encode→decode round trip unchanged.

func FuzzDecodeEntries(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeEntries(nil))
	f.Add(EncodeEntries([]topn.Entry{{ID: "v00001", Score: 0.5}, {ID: "v00002", Score: -1.25}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge uvarint count
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeEntries(data)
		if err != nil {
			return
		}
		again, err := DecodeEntries(EncodeEntries(entries))
		if err != nil {
			t.Fatalf("re-decoding a freshly encoded list failed: %v", err)
		}
		if len(entries) != len(again) {
			t.Fatalf("entry count changed across round trip: %d vs %d", len(entries), len(again))
		}
		// Scores compare as bit patterns, not ==: the codec is canonical down
		// to NaN payloads, which float equality cannot see (NaN != NaN).
		for i := range entries {
			if entries[i].ID != again[i].ID ||
				math.Float64bits(entries[i].Score) != math.Float64bits(again[i].Score) {
				t.Fatalf("entry %d changed across round trip:\n  first:  %#v\n  second: %#v", i, entries[i], again[i])
			}
		}
	})
}

func FuzzDecodeStrings(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeStrings(nil))
	f.Add(EncodeStrings([]string{"v00001", "", "a long history entry id"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ss, err := DecodeStrings(data)
		if err != nil {
			return
		}
		again, err := DecodeStrings(EncodeStrings(ss))
		if err != nil {
			t.Fatalf("re-decoding a freshly encoded list failed: %v", err)
		}
		if !reflect.DeepEqual(noneOrSame(ss), noneOrSame(again)) {
			t.Fatalf("string list changed across round trip: %q vs %q", ss, again)
		}
	})
}

func FuzzDecodeFloats(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFloats([]float64{0, 1.5, -2.25}))
	f.Add([]byte{1, 2, 3}) // not a multiple of 8
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeFloats(data)
		if err != nil {
			return
		}
		// The float codec is fixed-width and canonical: encode(decode(b))
		// must reproduce the input bytes exactly (NaN payloads included).
		if got := EncodeFloats(v); !bytes.Equal(got, data) {
			t.Fatalf("float codec is not canonical: %x re-encoded as %x", data, got)
		}
	})
}

// FuzzNetRequestFrame feeds arbitrary bytes to the gob decoder the KV server
// runs against every inbound connection: malformed frames must error, never
// panic or tear state, and well-formed frames must round trip.
func FuzzNetRequestFrame(f *testing.F) {
	frame := func(req request) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(frame(request{Op: opGet, Key: "sys/global.uv:u00001"}))
	f.Add(frame(request{Op: opSet, Key: "sys.hot:global", Val: []byte{1, 2, 3}}))
	f.Add(frame(request{Op: opMGet, Keys: []string{"a", "b"}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
			t.Fatalf("re-encoding a decoded request failed: %v", err)
		}
		var again request
		if err := gob.NewDecoder(&buf).Decode(&again); err != nil {
			t.Fatalf("decoding a freshly encoded request failed: %v", err)
		}
		if req.Op != again.Op || req.Key != again.Key ||
			!reflect.DeepEqual(noneOrSame(req.Keys), noneOrSame(again.Keys)) ||
			!bytes.Equal(req.Val, again.Val) {
			t.Fatalf("request changed across round trip:\n  first:  %#v\n  second: %#v", req, again)
		}
	})
}

// noneOrSame maps a nil slice to its empty form so round-trip comparisons
// ignore the nil-vs-empty distinction the codecs deliberately collapse.
func noneOrSame[S ~[]E, E any](s S) S {
	if len(s) == 0 {
		return S{}
	}
	return s
}

// FuzzDecodeQ8Vec drives the quantized-vector record through both directions:
// arbitrary bytes must decode-or-error without panicking (and re-encode
// canonically when they decode), and arbitrary float vectors must survive the
// full quantize → encode → decode → dequantize pipeline — including all-zero,
// subnormal, and non-finite inputs, which must collapse to the zero record
// rather than a poisoned scale.
func FuzzDecodeQ8Vec(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeQ8Vec(0, 0, nil))
	q := vecmath.Quantize([]float64{0.5, -1, 0.25})
	f.Add(EncodeQ8Vec(q.Scale, 0.125, q.Data))
	f.Add(EncodeFloats([]float64{0, 0, 0, 0}))
	f.Add(EncodeFloats([]float64{5e-324, -5e-324}))      // subnormal maxAbs underflows the scale
	f.Add(EncodeFloats([]float64{math.Inf(1), 1, -1}))   // non-finite component
	f.Add(EncodeFloats([]float64{math.NaN(), 0.5, 0.5})) // NaN component
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: untrusted record bytes.
		if scale, bias, payload, err := DecodeQ8Vec(data); err == nil {
			if got := EncodeQ8Vec(scale, bias, payload); !bytes.Equal(got, data) {
				t.Fatalf("q8 codec is not canonical: %x re-encoded as %x", data, got)
			}
			scratch := make([]int8, 0, len(payload))
			s2, b2, p2, err := DecodeQ8VecInto(scratch, data)
			if err != nil || s2 != scale || math.Float64bits(b2) != math.Float64bits(bias) || !slices.Equal(p2, payload) {
				t.Fatalf("DecodeQ8VecInto disagrees with DecodeQ8Vec: %v", err)
			}
		}
		// Direction 2: the same bytes as a float vector through the full
		// quantize → encode → decode → dequantize pipeline.
		vec, err := DecodeFloats(data)
		if err != nil {
			return
		}
		qv := vecmath.Quantize(vec)
		if math.IsNaN(qv.Scale) || math.IsInf(qv.Scale, 0) || qv.Scale < 0 {
			t.Fatalf("Quantize emitted invalid scale %v for %v", qv.Scale, vec)
		}
		scale, bias, payload, err := DecodeQ8Vec(EncodeQ8Vec(qv.Scale, 0.5, qv.Data))
		if err != nil {
			t.Fatalf("round trip of quantized %v failed: %v", vec, err)
		}
		if scale != qv.Scale || bias != 0.5 || !slices.Equal(payload, qv.Data) {
			t.Fatalf("round trip mutated the record: scale %v→%v data %v→%v", qv.Scale, scale, qv.Data, payload)
		}
		back := vecmath.Dequantize(vecmath.QVec{Scale: scale, Data: payload}, nil)
		for i, x := range back {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("dequantized component %d of %v is non-finite: %v", i, vec, x)
			}
			if scale > 0 && !math.IsNaN(vec[i]) && !math.IsInf(vec[i], 0) {
				if diff := math.Abs(x - vec[i]); diff > scale/2+1e-12 {
					t.Fatalf("component %d: %v -> %v, error %v exceeds scale/2 %v", i, vec[i], x, diff, scale/2)
				}
			}
		}
	})
}

func FuzzDecodeShardMap(f *testing.F) {
	f.Add([]byte{})
	if m, err := NewShardMap([]string{"g0"}); err == nil {
		f.Add(EncodeShardMap(m))
	}
	if m, err := NewShardMap([]string{"alpha", "beta", "gamma"}); err == nil {
		m.Version = 9
		f.Add(EncodeShardMap(m))
	}
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge uvarint group count
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeShardMap(data)
		if err != nil {
			return
		}
		// Whatever decodes must validate — DecodeShardMap's contract is that
		// a corrupt map can never be installed.
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded map fails validation: %v", err)
		}
		again, err := DecodeShardMap(EncodeShardMap(m))
		if err != nil {
			t.Fatalf("re-decoding a freshly encoded map failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("map changed across round trip:\n  first:  %+v\n  second: %+v", m, again)
		}
	})
}

func FuzzDecodeStateSync(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeStateSync(&StateSync{MapVersion: 1}))
	f.Add(EncodeStateSync(&StateSync{
		MapVersion: 3,
		Slots:      []uint16{0, 17, 255},
		Entries:    []SyncEntry{{Key: "uv:u1", Val: []byte{1, 2, 3}}, {Key: "sim:v2", Val: nil}},
		Dedup:      []DedupEntry{{CID: 1, Seq: 9}, {CID: 2, Seq: 1}},
	}))
	f.Add([]byte{0x01, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge uvarint entry count
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeStateSync(data)
		if err != nil {
			return
		}
		for _, slot := range s.Slots {
			if slot >= NumShardSlots {
				t.Fatalf("decoded slot %d out of range", slot)
			}
		}
		again, err := DecodeStateSync(EncodeStateSync(s))
		if err != nil {
			t.Fatalf("re-decoding a freshly encoded payload failed: %v", err)
		}
		if s.MapVersion != again.MapVersion || !slices.Equal(s.Slots, again.Slots) ||
			len(s.Entries) != len(again.Entries) || !slices.Equal(s.Dedup, again.Dedup) {
			t.Fatalf("payload changed across round trip:\n  first:  %+v\n  second: %+v", s, again)
		}
		for i := range s.Entries {
			if s.Entries[i].Key != again.Entries[i].Key || !bytes.Equal(s.Entries[i].Val, again.Entries[i].Val) {
				t.Fatalf("entry %d changed across round trip", i)
			}
		}
	})
}
