package kvstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Snapshot persistence for the Local store: the whole keyspace serialized to
// a length-prefixed binary stream with a checksummed header. Production
// memory stores checkpoint for warm restarts — a cold recommender serves
// hot-list fallbacks only until the stream repopulates it, so reload time
// is directly user-visible. recserve's -snapshot flag uses this.
//
// Format: magic "VRKV1", uint32 entry count, then per entry a uvarint key
// length + key + uvarint value length + value, and a trailing CRC-32
// (Castagnoli) over everything after the magic.

var snapshotMagic = []byte("VRKV1")

// WriteSnapshot serializes every key/value pair to w.
func (l *Local) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return fmt.Errorf("kvstore: write snapshot magic: %w", err)
	}
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	out := io.MultiWriter(bw, crc)

	// Collect under shard read locks; values are copied by the iteration
	// contract, so writes concurrent with the snapshot yield a consistent
	// per-key (not cross-key) view, like production checkpoints.
	type kv struct {
		k string
		v []byte
	}
	var entries []kv
	l.ForEach(func(k string, v []byte) bool {
		entries = append(entries, kv{k, append([]byte(nil), v...)})
		return true
	})

	var count [4]byte
	binary.LittleEndian.PutUint32(count[:], uint32(len(entries)))
	if _, err := out.Write(count[:]); err != nil {
		return fmt.Errorf("kvstore: write snapshot count: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	for _, e := range entries {
		n := binary.PutUvarint(buf[:], uint64(len(e.k)))
		if _, err := out.Write(buf[:n]); err != nil {
			return fmt.Errorf("kvstore: write snapshot: %w", err)
		}
		if _, err := io.WriteString(out, e.k); err != nil {
			return fmt.Errorf("kvstore: write snapshot: %w", err)
		}
		n = binary.PutUvarint(buf[:], uint64(len(e.v)))
		if _, err := out.Write(buf[:n]); err != nil {
			return fmt.Errorf("kvstore: write snapshot: %w", err)
		}
		if _, err := out.Write(e.v); err != nil {
			return fmt.Errorf("kvstore: write snapshot: %w", err)
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return fmt.Errorf("kvstore: write snapshot checksum: %w", err)
	}
	return bw.Flush()
}

// ReadSnapshot loads a snapshot produced by WriteSnapshot into the store,
// overwriting existing keys. It validates the magic and checksum before
// reporting success; a corrupt snapshot may leave a partial load behind, so
// callers should treat an error as "start cold". Cancelling ctx abandons the
// load mid-stream (also leaving a partial load).
func (l *Local) ReadSnapshot(ctx context.Context, r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("kvstore: read snapshot magic: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return fmt.Errorf("kvstore: not a snapshot file (magic %q)", magic)
	}
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	in := io.TeeReader(br, crc)

	var count [4]byte
	if _, err := io.ReadFull(in, count[:]); err != nil {
		return fmt.Errorf("kvstore: read snapshot count: %w", err)
	}
	n := binary.LittleEndian.Uint32(count[:])
	byteReader := &teeByteReader{r: in}
	for i := uint32(0); i < n; i++ {
		key, err := readBlob(byteReader, in)
		if err != nil {
			return fmt.Errorf("kvstore: snapshot entry %d key: %w", i, err)
		}
		val, err := readBlob(byteReader, in)
		if err != nil {
			return fmt.Errorf("kvstore: snapshot entry %d value: %w", i, err)
		}
		if err := l.Set(ctx, string(key), val); err != nil {
			return err
		}
	}
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return fmt.Errorf("kvstore: read snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return fmt.Errorf("kvstore: snapshot checksum mismatch: %08x != %08x", got, want)
	}
	return nil
}

// SaveSnapshot writes the store to path atomically (temp file + rename).
func (l *Local) SaveSnapshot(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kvstore: create snapshot: %w", err)
	}
	if err := l.WriteSnapshot(f); err != nil {
		_ = f.Close()      // the write error is already being returned
		_ = os.Remove(tmp) // best-effort cleanup of the partial temp file
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) // best-effort cleanup of the partial temp file
		return fmt.Errorf("kvstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp) // best-effort cleanup of the orphaned temp file
		return fmt.Errorf("kvstore: install snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot file into the store.
func (l *Local) LoadSnapshot(ctx context.Context, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("kvstore: open snapshot: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only descriptor; checksum already validated the data
	return l.ReadSnapshot(ctx, f)
}

// teeByteReader adapts an io.Reader to io.ByteReader for Uvarint decoding
// while keeping the CRC tee intact.
type teeByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (t *teeByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(t.r, t.buf[:]); err != nil {
		return 0, err
	}
	return t.buf[0], nil
}

func readBlob(br io.ByteReader, r io.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxBlob = 64 << 20 // sanity bound: no single value is >64 MiB
	if n > maxBlob {
		return nil, fmt.Errorf("blob length %d exceeds sanity bound", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
