package kvstore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// flakyStore fails the next failNext operations with ErrInjected before
// delegating to an in-memory store. With block set, operations instead park
// on the context, which is how a stalled remote shard looks to a client.
type flakyStore struct {
	inner Store

	mu       sync.Mutex
	failNext int  // guarded by mu
	calls    int  // guarded by mu; operations attempted against this store
	block    bool // guarded by mu

	blockEntered chan struct{} // receives one token per call that parks
}

func newFlakyStore() *flakyStore {
	return &flakyStore{inner: NewLocal(4), blockEntered: make(chan struct{}, 16)}
}

func (f *flakyStore) setFailNext(n int) {
	f.mu.Lock()
	f.failNext = n
	f.mu.Unlock()
}

func (f *flakyStore) setBlock(b bool) {
	f.mu.Lock()
	f.block = b
	f.mu.Unlock()
}

func (f *flakyStore) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *flakyStore) before(ctx context.Context) error {
	f.mu.Lock()
	f.calls++
	if f.block {
		f.mu.Unlock()
		select {
		case f.blockEntered <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return ctx.Err()
	}
	if f.failNext > 0 {
		f.failNext--
		f.mu.Unlock()
		return ErrInjected
	}
	f.mu.Unlock()
	return nil
}

func (f *flakyStore) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := f.before(ctx); err != nil {
		return nil, false, err
	}
	return f.inner.Get(ctx, key)
}

func (f *flakyStore) Set(ctx context.Context, key string, val []byte) error {
	if err := f.before(ctx); err != nil {
		return err
	}
	return f.inner.Set(ctx, key, val)
}

func (f *flakyStore) Delete(ctx context.Context, key string) (bool, error) {
	if err := f.before(ctx); err != nil {
		return false, err
	}
	return f.inner.Delete(ctx, key)
}

func (f *flakyStore) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	if err := f.before(ctx); err != nil {
		return nil, err
	}
	return f.inner.MGet(ctx, keys)
}

func (f *flakyStore) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	if err := f.before(ctx); err != nil {
		return err
	}
	return f.inner.Update(ctx, key, fn)
}

func (f *flakyStore) Len(ctx context.Context) (int, error) {
	if err := f.before(ctx); err != nil {
		return 0, err
	}
	return f.inner.Len(ctx)
}

// noSleep replaces the inter-retry wait so tests never block on real timers.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func newTestResilient(t *testing.T, cfg ResilienceConfig) (*Resilient, *flakyStore, *fakeClock) {
	t.Helper()
	flaky := newFlakyStore()
	r := NewResilient(flaky, cfg, 7)
	clk := newFakeClock()
	r.SetClock(clk.Now)
	r.SetSleep(noSleep)
	return r, flaky, clk
}

func TestResilientRetriesTransientFault(t *testing.T) {
	r, flaky, _ := newTestResilient(t, ResilienceConfig{MaxRetries: 2})
	ctx := context.Background()

	if err := r.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	flaky.setFailNext(2) // first two attempts fail; the third lands
	v, ok, err := r.Get(ctx, "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v,%v, want recovered value", v, ok, err)
	}
	s := r.Stats()
	if s.Retries != 2 || s.Exhausted != 0 {
		t.Errorf("stats = %+v, want 2 retries, 0 exhausted", s)
	}
}

func TestResilientExhaustsRetryBudget(t *testing.T) {
	r, flaky, _ := newTestResilient(t, ResilienceConfig{MaxRetries: 2})
	flaky.setFailNext(100)

	_, _, err := r.Get(context.Background(), "k")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected visible through the decorator", err)
	}
	if got := flaky.callCount(); got != 3 {
		t.Errorf("attempts = %d, want 3 (1 initial + 2 retries)", got)
	}
	s := r.Stats()
	if s.Retries != 2 || s.Exhausted != 1 {
		t.Errorf("stats = %+v, want 2 retries, 1 exhausted", s)
	}
}

func TestResilientBreakerFailsFast(t *testing.T) {
	r, flaky, _ := newTestResilient(t, ResilienceConfig{
		MaxRetries: 2,
		Breaker:    BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
	})
	flaky.setFailNext(100)

	// One operation burns the full budget: 3 attempts, 3 consecutive
	// failures, which is exactly the trip threshold.
	if _, _, err := r.Get(context.Background(), "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := r.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}
	attempts := flaky.callCount()

	// The next operation must be rejected without touching the backend.
	if _, _, err := r.Get(context.Background(), "k"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if got := flaky.callCount(); got != attempts {
		t.Errorf("open breaker let %d calls through to the backend", got-attempts)
	}
}

func TestResilientBreakerRecovers(t *testing.T) {
	r, flaky, clk := newTestResilient(t, ResilienceConfig{
		MaxRetries: 0,
		Breaker:    BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond},
	})
	ctx := context.Background()
	if err := r.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	flaky.setFailNext(100)
	if _, _, err := r.Get(ctx, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}

	// Probe while the backend is still down: breaker re-opens.
	clk.Advance(50 * time.Millisecond)
	if _, _, err := r.Get(ctx, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("probe err = %v, want ErrInjected", err)
	}
	if got := r.Breaker().State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}

	// Backend heals; after another cooldown the probe succeeds and the
	// breaker closes.
	flaky.setFailNext(0)
	clk.Advance(50 * time.Millisecond)
	v, ok, err := r.Get(ctx, "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after recovery = %q,%v,%v", v, ok, err)
	}
	s := r.Stats().Breaker
	if s.State != BreakerClosed || s.Resets != 1 {
		t.Errorf("breaker stats = %+v, want closed with 1 reset", s)
	}
}

func TestResilientOpTimeout(t *testing.T) {
	r, flaky, _ := newTestResilient(t, ResilienceConfig{
		OpTimeout:  10 * time.Millisecond,
		MaxRetries: 0,
	})
	flaky.setBlock(true)

	_, _, err := r.Get(context.Background(), "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from the per-attempt deadline", err)
	}
	if s := r.Stats(); s.Exhausted != 1 {
		t.Errorf("Exhausted = %d, want 1", s.Exhausted)
	}
}

func TestResilientHonorsCanceledContext(t *testing.T) {
	r, flaky, _ := newTestResilient(t, ResilienceConfig{MaxRetries: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := r.Get(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if got := flaky.callCount(); got != 0 {
		t.Errorf("canceled context reached the backend %d times", got)
	}
}

func TestResilientNoRetryAfterParentDeadline(t *testing.T) {
	// When the caller's own context dies mid-operation, the decorator must
	// not keep retrying on a dead budget.
	r, flaky, _ := newTestResilient(t, ResilienceConfig{MaxRetries: 5})
	flaky.setFailNext(100)
	ctx, cancel := context.WithCancel(context.Background())

	// Park the first attempt on the context, then cancel: the attempt fails
	// with Canceled and do's post-attempt check must stop rather than burn
	// the remaining retries against a dead budget.
	flaky.setBlock(true)
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Get(ctx, "k")
		done <- err
	}()
	<-flaky.blockEntered // attempt 1 is parked inside the store
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if got := flaky.callCount(); got != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on a dead parent context)", got)
	}
}

func TestResilientPassesThroughAllOps(t *testing.T) {
	r, _, _ := newTestResilient(t, ResilienceConfig{MaxRetries: 1})
	ctx := context.Background()

	if err := r.Set(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Set(ctx, "b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	vals, err := r.MGet(ctx, []string{"a", "b", "x"})
	if err != nil || string(vals[0]) != "1" || string(vals[1]) != "2" || vals[2] != nil {
		t.Fatalf("MGet = %q, %v", vals, err)
	}
	if err := r.Update(ctx, "a", func(cur []byte, exists bool) ([]byte, bool) {
		return append(cur, '!'), true
	}); err != nil {
		t.Fatal(err)
	}
	v, _, _ := r.Get(ctx, "a")
	if string(v) != "1!" {
		t.Errorf("value after Update = %q, want %q", v, "1!")
	}
	if n, err := r.Len(ctx); err != nil || n != 2 {
		t.Errorf("Len = %d,%v, want 2", n, err)
	}
	if ok, err := r.Delete(ctx, "b"); err != nil || !ok {
		t.Errorf("Delete = %v,%v, want true", ok, err)
	}
}
