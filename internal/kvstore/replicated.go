package kvstore

import (
	"context"
	"errors"
	"fmt"

	"vidrec/internal/metrics"
)

// Replicated composes N backend Stores into one: writes go to every backend
// (write-all), reads are served by the first backend that answers
// (read-first-healthy). There is no quorum and no read repair — replication
// here buys availability, not consensus, which is the right trade for this
// system's state: every key has a single writer (the topology's fields
// grouping), updates are deterministic functions of the input stream, and a
// replica that missed writes during an outage serves *stale* model state,
// never *wrong* state — exactly the degradation the paper accepts from its
// production KV tier. A write succeeds when at least one backend accepted
// it; per-backend write failures are counted, not fatal, so one dead replica
// never takes down ingest.
//
// Compose each backend from a Resilient-wrapped store to get per-backend
// retry and circuit breaking; an open breaker then makes that backend fail
// fast and reads skip over it at memory speed.
type Replicated struct {
	backends []Store

	readFallbacks metrics.Counter // reads answered by a non-primary backend
	writeSkips    metrics.Counter // write ops that failed on ≥1 backend (but succeeded overall)
}

// NewReplicated composes backends into one Store. At least one backend is
// required; one is allowed (a degenerate but valid deployment).
func NewReplicated(backends ...Store) (*Replicated, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("kvstore: replicated store needs at least one backend")
	}
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("kvstore: replicated backend %d is nil", i)
		}
	}
	return &Replicated{backends: append([]Store(nil), backends...)}, nil
}

// Backends reports the number of composed backends.
func (r *Replicated) Backends() int { return len(r.backends) }

// ReplicatedStats is a point-in-time snapshot of the replication counters.
type ReplicatedStats struct {
	ReadFallbacks uint64 // reads served by a non-primary backend
	WriteSkips    uint64 // per-backend write failures absorbed by write-all
}

// Stats returns the replication counters.
func (r *Replicated) Stats() ReplicatedStats {
	return ReplicatedStats{
		ReadFallbacks: r.readFallbacks.Load(),
		WriteSkips:    r.writeSkips.Load(),
	}
}

// readFrom runs op against each backend in order and returns on the first
// success. A missing key is a success — only errors advance to the next
// backend, so a healthy primary always answers and replicas never shadow it.
func (r *Replicated) readFrom(ctx context.Context, op func(Store) error) error {
	var errs []error
	for i, b := range r.backends {
		err := op(b)
		if err == nil {
			if i > 0 {
				r.readFallbacks.Inc()
			}
			return nil
		}
		errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
		if ctx.Err() != nil {
			break // the caller's deadline died, not the backend; stop probing
		}
	}
	return errors.Join(errs...)
}

// writeAll runs op against every backend and succeeds when at least one
// accepted the write. Failures on the rest are counted (WriteSkips) — the
// missed replica is stale until it is rebuilt, which read-first-healthy
// ordering tolerates.
func (r *Replicated) writeAll(ctx context.Context, op func(Store) error) error {
	var errs []error
	okCount := 0
	for i, b := range r.backends {
		if err := op(b); err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
			if ctx.Err() != nil {
				break // remaining backends would fail on the dead context too
			}
			continue
		}
		okCount++
	}
	if okCount == 0 {
		return errors.Join(errs...)
	}
	if len(errs) > 0 {
		r.writeSkips.Add(uint64(len(errs)))
	}
	return nil
}

// Get implements Store.
func (r *Replicated) Get(ctx context.Context, key string) ([]byte, bool, error) {
	var v []byte
	var ok bool
	err := r.readFrom(ctx, func(s Store) error {
		var err error
		v, ok, err = s.Get(ctx, key)
		return err
	})
	if err != nil {
		return nil, false, err
	}
	return v, ok, nil
}

// MGet implements Store. The whole batch is served by one backend so the
// returned values are a consistent snapshot of a single replica.
func (r *Replicated) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	var vals [][]byte
	err := r.readFrom(ctx, func(s Store) error {
		var err error
		vals, err = s.MGet(ctx, keys)
		return err
	})
	if err != nil {
		return nil, err
	}
	return vals, nil
}

// Len implements Store, reporting the first healthy backend's count.
func (r *Replicated) Len(ctx context.Context) (int, error) {
	var n int
	err := r.readFrom(ctx, func(s Store) error {
		var err error
		n, err = s.Len(ctx)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Set implements Store (write-all).
func (r *Replicated) Set(ctx context.Context, key string, val []byte) error {
	return r.writeAll(ctx, func(s Store) error {
		return s.Set(ctx, key, val)
	})
}

// Delete implements Store (write-all). The reported existence comes from the
// first backend that accepted the delete.
func (r *Replicated) Delete(ctx context.Context, key string) (bool, error) {
	var ok, recorded bool
	err := r.writeAll(ctx, func(s Store) error {
		existed, err := s.Delete(ctx, key)
		if err == nil && !recorded {
			ok, recorded = existed, true
		}
		return err
	})
	if err != nil {
		return false, err
	}
	return ok, nil
}

// Update implements Store as read-first-healthy + apply-once + write-all: the
// callback runs exactly once, on the freshest reachable value, and the result
// fans out to every backend. Per-key atomicity therefore rests on the
// topology's single-writer discipline, the same contract Client.Update
// already documents.
func (r *Replicated) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	cur, ok, err := r.Get(ctx, key)
	if err != nil {
		return err
	}
	next, keep := fn(cur, ok)
	if !keep {
		_, err := r.Delete(ctx, key)
		return err
	}
	return r.Set(ctx, key, next)
}
