package kvstore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Networked deployment of the store. The paper's production system keeps all
// model state in a distributed memory-based key-value service that the Storm
// workers talk to over the network; Server/Client reproduce that deployment
// shape with a small gob-encoded request/response protocol over TCP. Each
// client connection is a session with its own encoder/decoder pair; requests
// on one connection are processed in order.

type opCode uint8

const (
	opGet opCode = iota + 1
	opSet
	opDelete
	opMGet
	opLen
)

type request struct {
	Op   opCode
	Key  string
	Keys []string
	Val  []byte
}

type response struct {
	OK     bool
	Val    []byte
	Vals   [][]byte
	N      int
	ErrMsg string
}

// Server exposes a backing Store over TCP.
type Server struct {
	backing  Store
	listener net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// NewServer starts serving the backing store on addr (e.g. "127.0.0.1:0").
// It returns once the listener is bound; connection handling proceeds in the
// background until Close.
func NewServer(backing Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen %s: %w", addr, err)
	}
	s := &Server{backing: backing, listener: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address the server is listening on.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and closes every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close() // teardown: per-conn close errors don't outrank the listener's
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing shutdown: the session never started
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // session over; the peer sees EOF either way
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *request) *response {
	var resp response
	switch req.Op {
	case opGet:
		v, ok, err := s.backing.Get(req.Key)
		resp.Val, resp.OK = v, ok
		setErr(&resp, err)
	case opSet:
		setErr(&resp, s.backing.Set(req.Key, req.Val))
		resp.OK = true
	case opDelete:
		ok, err := s.backing.Delete(req.Key)
		resp.OK = ok
		setErr(&resp, err)
	case opMGet:
		vals, err := s.backing.MGet(req.Keys)
		resp.Vals = vals
		resp.OK = true
		setErr(&resp, err)
	case opLen:
		n, err := s.backing.Len()
		resp.N = n
		resp.OK = true
		setErr(&resp, err)
	default:
		resp.ErrMsg = fmt.Sprintf("kvstore: unknown op %d", req.Op)
	}
	return &resp
}

func setErr(resp *response, err error) {
	if err != nil {
		resp.ErrMsg = err.Error()
	}
}

// Client is a Store backed by a remote Server. It maintains a small pool of
// connections; each request checks one out for its round trip, so the client
// is safe for concurrent use by many topology workers.
type Client struct {
	addr string

	mu     sync.Mutex
	idle   []*clientConn // guarded by mu
	closed bool          // guarded by mu
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a Server at addr. The initial connection is established
// eagerly so that configuration errors surface immediately.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	cc, err := c.newConn()
	if err != nil {
		return nil, err
	}
	c.put(cc)
	return c, nil
}

func (c *Client) newConn() (*clientConn, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", c.addr, err)
	}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *Client) get() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("kvstore: client closed")
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	return c.newConn()
}

func (c *Client) put(cc *clientConn) {
	c.mu.Lock()
	if c.closed || len(c.idle) >= 16 {
		c.mu.Unlock()
		_ = cc.conn.Close() // surplus conn: nothing in flight to lose
		return
	}
	c.idle = append(c.idle, cc)
	c.mu.Unlock()
}

// Close closes all pooled connections; in-flight requests may fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.idle {
		_ = cc.conn.Close() // pool teardown: idle conns carry no in-flight requests
	}
	c.idle = nil
	return nil
}

func (c *Client) roundTrip(req *request) (*response, error) {
	cc, err := c.get()
	if err != nil {
		return nil, err
	}
	var resp response
	if err := cc.enc.Encode(req); err != nil {
		_ = cc.conn.Close() // conn is poisoned; the encode error is what matters
		return nil, fmt.Errorf("kvstore: send: %w", err)
	}
	if err := cc.dec.Decode(&resp); err != nil {
		_ = cc.conn.Close() // conn is poisoned; the decode error is what matters
		return nil, fmt.Errorf("kvstore: recv: %w", err)
	}
	c.put(cc)
	if resp.ErrMsg != "" {
		return nil, errors.New(resp.ErrMsg)
	}
	return &resp, nil
}

// Get implements Store.
func (c *Client) Get(key string) ([]byte, bool, error) {
	resp, err := c.roundTrip(&request{Op: opGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Val, resp.OK, nil
}

// Set implements Store.
func (c *Client) Set(key string, val []byte) error {
	_, err := c.roundTrip(&request{Op: opSet, Key: key, Val: val})
	return err
}

// Delete implements Store.
func (c *Client) Delete(key string) (bool, error) {
	resp, err := c.roundTrip(&request{Op: opDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// MGet implements Store.
func (c *Client) MGet(keys []string) ([][]byte, error) {
	resp, err := c.roundTrip(&request{Op: opMGet, Keys: keys})
	if err != nil {
		return nil, err
	}
	return resp.Vals, nil
}

// Update implements Store as a get-modify-set sequence. This is linearizable
// only under the topology's single-writer-per-key discipline (fields grouping
// guarantees exactly one worker updates a given key), matching the paper's
// correctness argument in §5.1.
func (c *Client) Update(key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	cur, ok, err := c.Get(key)
	if err != nil {
		return err
	}
	next, keep := fn(cur, ok)
	if !keep {
		_, err := c.Delete(key)
		return err
	}
	return c.Set(key, next)
}

// Len implements Store.
func (c *Client) Len() (int, error) {
	resp, err := c.roundTrip(&request{Op: opLen})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}
