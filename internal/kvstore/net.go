package kvstore

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Networked deployment of the store. The paper's production system keeps all
// model state in a distributed memory-based key-value service that the Storm
// workers talk to over the network; Server/Client reproduce that deployment
// shape with a small gob-encoded request/response protocol over TCP. Each
// client connection is a session with its own encoder/decoder pair; requests
// on one connection are processed in order.
//
// Context discipline: every client operation takes a context whose deadline
// is pushed down onto the TCP connection, so a stalled server surfaces as a
// timeout on the serving path instead of a wedged goroutine. The server
// threads a base context (supplied at construction, normally the process
// lifetime context) into every backing-store call.

type opCode uint8

const (
	opGet opCode = iota + 1
	opSet
	opDelete
	opMGet
	opLen
)

type request struct {
	Op   opCode
	Key  string
	Keys []string
	Val  []byte
}

type response struct {
	OK     bool
	Val    []byte
	Vals   [][]byte
	N      int
	ErrMsg string
}

// Server exposes a backing Store over TCP.
type Server struct {
	backing  Store
	listener net.Listener
	baseCtx  context.Context

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// NewServer starts serving the backing store on addr (e.g. "127.0.0.1:0").
// It returns once the listener is bound; connection handling proceeds in the
// background until Close. ctx is the base context threaded into every
// backing-store call; cancelling it fails in-flight requests but does not
// stop the listener — use Close for shutdown.
func NewServer(ctx context.Context, backing Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen %s: %w", addr, err)
	}
	s := &Server{backing: backing, listener: ln, baseCtx: ctx, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address the server is listening on.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and closes every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close() // teardown: per-conn close errors don't outrank the listener's
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// acceptLoop's lifetime is bounded by the listener: Close unblocks Accept.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		// ctxcheck: lifecycle goroutine; shutdown is listener Close, not cancellation
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing shutdown: the session never started
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(s.baseCtx, conn)
	}
}

func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // session over; the peer sees EOF either way
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		resp := s.handle(ctx, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(ctx context.Context, req *request) *response {
	var resp response
	switch req.Op {
	case opGet:
		v, ok, err := s.backing.Get(ctx, req.Key)
		resp.Val, resp.OK = v, ok
		setErr(&resp, err)
	case opSet:
		setErr(&resp, s.backing.Set(ctx, req.Key, req.Val))
		resp.OK = true
	case opDelete:
		ok, err := s.backing.Delete(ctx, req.Key)
		resp.OK = ok
		setErr(&resp, err)
	case opMGet:
		vals, err := s.backing.MGet(ctx, req.Keys)
		resp.Vals = vals
		resp.OK = true
		setErr(&resp, err)
	case opLen:
		n, err := s.backing.Len(ctx)
		resp.N = n
		resp.OK = true
		setErr(&resp, err)
	default:
		resp.ErrMsg = fmt.Sprintf("kvstore: unknown op %d", req.Op)
	}
	return &resp
}

func setErr(resp *response, err error) {
	if err != nil {
		resp.ErrMsg = err.Error()
	}
}

// Client is a Store backed by a remote Server. It maintains a small pool of
// connections; each request checks one out for its round trip, so the client
// is safe for concurrent use by many topology workers.
type Client struct {
	addr string

	mu     sync.Mutex
	idle   []*clientConn // guarded by mu
	closed bool          // guarded by mu
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialContext connects to a Server at addr under ctx's deadline. The initial
// connection is established eagerly so that configuration errors surface
// immediately.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	c := &Client{addr: addr}
	cc, err := c.newConn(ctx)
	if err != nil {
		return nil, err
	}
	c.put(cc)
	return c, nil
}

func (c *Client) newConn(ctx context.Context) (*clientConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", c.addr, err)
	}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// get checks a connection out of the pool, dialing a fresh one when the pool
// is empty. pooled reports which case happened: a pooled connection may have
// been poisoned while idle (server restart, idle timeout at the peer), so
// its first error is grounds for a retry on a fresh dial, whereas a fresh
// connection's error is the network's real answer.
func (c *Client) get(ctx context.Context) (cc *clientConn, pooled bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, errors.New("kvstore: client closed")
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, true, nil
	}
	c.mu.Unlock()
	cc, err = c.newConn(ctx)
	return cc, false, err
}

func (c *Client) put(cc *clientConn) {
	c.mu.Lock()
	if c.closed || len(c.idle) >= 16 {
		c.mu.Unlock()
		_ = cc.conn.Close() // surplus conn: nothing in flight to lose
		return
	}
	c.idle = append(c.idle, cc)
	c.mu.Unlock()
}

// Close closes all pooled connections; in-flight requests may fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cc := range c.idle {
		_ = cc.conn.Close() // pool teardown: idle conns carry no in-flight requests
	}
	c.idle = nil
	return nil
}

// roundTrip performs one request/response exchange. Transport failures on a
// *pooled* connection are not the network's final answer — the conn may have
// been poisoned while idle (the server restarted, a middlebox dropped the
// flow) — so the poisoned conn is discarded and the exchange retried on the
// next connection; once the pool is drained a fresh dial's verdict is final.
// Server-reported errors (resp.ErrMsg) are never retried: the request was
// delivered and answered.
func (c *Client) roundTrip(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for {
		cc, pooled, err := c.get(ctx)
		if err != nil {
			return nil, err
		}
		resp, err := c.exchange(ctx, cc, req)
		if err != nil {
			if pooled && ctx.Err() == nil {
				continue // stale pooled conn; redial rather than fail the op
			}
			return nil, err
		}
		if resp.ErrMsg != "" {
			return nil, errors.New(resp.ErrMsg)
		}
		return resp, nil
	}
}

// exchange runs one request/response over a specific connection. A context
// deadline is pushed onto the connection for the exchange (and cleared before
// the conn returns to the pool), so a stalled server fails the call instead
// of blocking a worker forever. A deadline/cancellation failure poisons the
// conn — the stream may hold a half-read response — so it is dropped. The
// returned error is always transport-level; server-side errors travel inside
// the response.
func (c *Client) exchange(ctx context.Context, cc *clientConn, req *request) (*response, error) {
	if deadline, ok := ctx.Deadline(); ok {
		if err := cc.conn.SetDeadline(deadline); err != nil {
			_ = cc.conn.Close() // conn is unusable if deadlines can't be set
			return nil, fmt.Errorf("kvstore: set deadline: %w", err)
		}
	}
	var resp response
	if err := cc.enc.Encode(req); err != nil {
		_ = cc.conn.Close() // conn is poisoned; the encode error is what matters
		return nil, fmt.Errorf("kvstore: send: %w", err)
	}
	if err := cc.dec.Decode(&resp); err != nil {
		_ = cc.conn.Close() // conn is poisoned; the decode error is what matters
		return nil, fmt.Errorf("kvstore: recv: %w", err)
	}
	if _, ok := ctx.Deadline(); ok {
		if err := cc.conn.SetDeadline(time.Time{}); err != nil {
			_ = cc.conn.Close() // cannot clear the deadline; don't pool it
			return &resp, nil
		}
	}
	c.put(cc)
	return &resp, nil
}

// Get implements Store.
func (c *Client) Get(ctx context.Context, key string) ([]byte, bool, error) {
	resp, err := c.roundTrip(ctx, &request{Op: opGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Val, resp.OK, nil
}

// Set implements Store.
func (c *Client) Set(ctx context.Context, key string, val []byte) error {
	_, err := c.roundTrip(ctx, &request{Op: opSet, Key: key, Val: val})
	return err
}

// Delete implements Store.
func (c *Client) Delete(ctx context.Context, key string) (bool, error) {
	resp, err := c.roundTrip(ctx, &request{Op: opDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// MGet implements Store.
func (c *Client) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	resp, err := c.roundTrip(ctx, &request{Op: opMGet, Keys: keys})
	if err != nil {
		return nil, err
	}
	return resp.Vals, nil
}

// Update implements Store as a get-modify-set sequence. This is linearizable
// only under the topology's single-writer-per-key discipline (fields grouping
// guarantees exactly one worker updates a given key), matching the paper's
// correctness argument in §5.1.
func (c *Client) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	cur, ok, err := c.Get(ctx, key)
	if err != nil {
		return err
	}
	next, keep := fn(cur, ok)
	if !keep {
		_, err := c.Delete(ctx, key)
		return err
	}
	return c.Set(ctx, key, next)
}

// Len implements Store.
func (c *Client) Len(ctx context.Context) (int, error) {
	resp, err := c.roundTrip(ctx, &request{Op: opLen})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}
