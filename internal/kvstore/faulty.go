package kvstore

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Faulty wraps a Store with deterministic fault and latency injection, for
// testing how the pipeline behaves when the storage tier degrades — the
// production failure mode a 100-node deployment sees daily. Faults are
// driven by a seeded PRNG so failing runs reproduce exactly.
type Faulty struct {
	inner Store

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	// FailRate is the probability in [0,1] that an operation returns
	// ErrInjected instead of executing.
	failRate atomic.Uint64 // float64 bits
	// latency is added to every operation.
	latency atomic.Int64 // nanoseconds

	injected atomic.Uint64
}

// ErrInjected is returned by operations the injector chose to fail.
var ErrInjected = fmt.Errorf("kvstore: injected fault")

// NewFaulty wraps inner with fault injection driven by seed.
func NewFaulty(inner Store, seed uint64) *Faulty {
	return &Faulty{inner: inner, rng: rand.New(rand.NewPCG(seed, seed^0xF00D))}
}

// SetFailRate sets the per-operation failure probability.
func (f *Faulty) SetFailRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	f.failRate.Store(floatBits(p))
}

// SetLatency sets the artificial per-operation latency.
func (f *Faulty) SetLatency(d time.Duration) { f.latency.Store(int64(d)) }

// Injected reports how many operations were failed so far.
func (f *Faulty) Injected() uint64 { return f.injected.Load() }

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func (f *Faulty) fault(ctx context.Context) error {
	if d := f.latency.Load(); d > 0 {
		// Injected latency honours cancellation: a caller with a deadline
		// sees the timeout it configured, not the injector's full delay.
		t := time.NewTimer(time.Duration(d))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	p := math.Float64frombits(f.failRate.Load())
	if p <= 0 {
		return nil
	}
	f.mu.Lock()
	roll := f.rng.Float64()
	f.mu.Unlock()
	if roll < p {
		f.injected.Add(1)
		return ErrInjected
	}
	return nil
}

// Get implements Store.
func (f *Faulty) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := f.fault(ctx); err != nil {
		return nil, false, err
	}
	return f.inner.Get(ctx, key)
}

// Set implements Store.
func (f *Faulty) Set(ctx context.Context, key string, val []byte) error {
	if err := f.fault(ctx); err != nil {
		return err
	}
	return f.inner.Set(ctx, key, val)
}

// Delete implements Store.
func (f *Faulty) Delete(ctx context.Context, key string) (bool, error) {
	if err := f.fault(ctx); err != nil {
		return false, err
	}
	return f.inner.Delete(ctx, key)
}

// MGet implements Store.
func (f *Faulty) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	if err := f.fault(ctx); err != nil {
		return nil, err
	}
	return f.inner.MGet(ctx, keys)
}

// Update implements Store.
func (f *Faulty) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	if err := f.fault(ctx); err != nil {
		return err
	}
	return f.inner.Update(ctx, key, fn)
}

// Len implements Store.
func (f *Faulty) Len(ctx context.Context) (int, error) {
	if err := f.fault(ctx); err != nil {
		return 0, err
	}
	return f.inner.Len(ctx)
}
