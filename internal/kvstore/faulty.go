package kvstore

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Faulty wraps a Store with deterministic fault and latency injection, for
// testing how the pipeline behaves when the storage tier degrades — the
// production failure mode a 100-node deployment sees daily. Faults are
// driven by a seeded PRNG so failing runs reproduce exactly.
type Faulty struct {
	inner Store

	mu       sync.Mutex
	rng      *rand.Rand   // guarded by mu
	schedule []FaultPhase // guarded by mu
	opCount  uint64       // guarded by mu; operations seen since SetSchedule

	// FailRate is the probability in [0,1] that an operation returns
	// ErrInjected instead of executing.
	failRate atomic.Uint64 // float64 bits
	// latency is added to every operation.
	latency atomic.Int64 // nanoseconds

	injected atomic.Uint64
}

// FaultPhase describes the injector's behaviour for a window of operations.
// A schedule is a sequence of phases consumed by operation count, which makes
// fault timing a deterministic function of the workload instead of wall time:
// the same scenario replays the same faults on every run.
type FaultPhase struct {
	// Ops is how many operations the phase covers. 0 means "until the end
	// of the run" (only sensible for the last phase).
	Ops uint64
	// FailRate is the probability in [0,1] that an operation in this phase
	// returns ErrInjected.
	FailRate float64
	// Latency is added to every operation in this phase.
	Latency time.Duration
	// KeyPrefix, when non-empty, restricts the phase's effects to
	// operations touching at least one key with this prefix — a partial
	// outage (e.g. one namespace's shard) rather than a store-wide one.
	KeyPrefix string
}

// ErrInjected is returned by operations the injector chose to fail.
var ErrInjected = fmt.Errorf("kvstore: injected fault")

// NewFaulty wraps inner with fault injection driven by seed.
func NewFaulty(inner Store, seed uint64) *Faulty {
	return &Faulty{inner: inner, rng: rand.New(rand.NewPCG(seed, seed^0xF00D))}
}

// SetFailRate sets the per-operation failure probability.
func (f *Faulty) SetFailRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	f.failRate.Store(floatBits(p))
}

// SetLatency sets the artificial per-operation latency.
func (f *Faulty) SetLatency(d time.Duration) { f.latency.Store(int64(d)) }

// SetSchedule installs an operation-counted fault schedule, replacing the
// flat SetFailRate/SetLatency knobs while non-empty. The operation counter
// restarts at zero, so phases are relative to the installation point. A nil
// or empty schedule reverts to the flat knobs.
func (f *Faulty) SetSchedule(phases []FaultPhase) {
	f.mu.Lock()
	f.schedule = append([]FaultPhase(nil), phases...)
	f.opCount = 0
	f.mu.Unlock()
}

// Injected reports how many operations were failed so far.
func (f *Faulty) Injected() uint64 { return f.injected.Load() }

// Ops reports how many operations the injector has seen since the schedule
// was installed (or since construction, when no schedule was ever set).
func (f *Faulty) Ops() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opCount
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func (f *Faulty) fault(ctx context.Context, keys ...string) error {
	latency, fail := f.decide(keys)
	if latency > 0 {
		// Injected latency honours cancellation: a caller with a deadline
		// sees the timeout it configured, not the injector's full delay.
		t := time.NewTimer(latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if fail {
		f.injected.Add(1)
		return ErrInjected
	}
	return nil
}

// decide resolves what happens to the current operation: added latency and
// whether it fails. One RNG roll is consumed per operation regardless of the
// outcome, so the fault pattern is a pure function of (seed, op sequence).
func (f *Faulty) decide(keys []string) (time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := f.opCount
	f.opCount++
	roll := f.rng.Float64()
	if len(f.schedule) == 0 {
		d := time.Duration(f.latency.Load())
		p := math.Float64frombits(f.failRate.Load())
		return d, p > 0 && roll < p
	}
	ph := phaseAt(f.schedule, op)
	if ph == nil || !prefixMatches(ph.KeyPrefix, keys) {
		return 0, false
	}
	return ph.Latency, ph.FailRate > 0 && roll < ph.FailRate
}

// phaseAt finds the phase covering operation index op, or nil when the
// schedule has run out.
func phaseAt(schedule []FaultPhase, op uint64) *FaultPhase {
	var start uint64
	for i := range schedule {
		ph := &schedule[i]
		if ph.Ops == 0 || op < start+ph.Ops {
			return ph
		}
		start += ph.Ops
	}
	return nil
}

// prefixMatches reports whether the phase applies: an empty prefix matches
// every operation (including key-less ones like Len), otherwise at least one
// touched key must carry the prefix.
func prefixMatches(prefix string, keys []string) bool {
	if prefix == "" {
		return true
	}
	for _, k := range keys {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// Get implements Store.
func (f *Faulty) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := f.fault(ctx, key); err != nil {
		return nil, false, err
	}
	return f.inner.Get(ctx, key)
}

// Set implements Store.
func (f *Faulty) Set(ctx context.Context, key string, val []byte) error {
	if err := f.fault(ctx, key); err != nil {
		return err
	}
	return f.inner.Set(ctx, key, val)
}

// Delete implements Store.
func (f *Faulty) Delete(ctx context.Context, key string) (bool, error) {
	if err := f.fault(ctx, key); err != nil {
		return false, err
	}
	return f.inner.Delete(ctx, key)
}

// MGet implements Store.
func (f *Faulty) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	if err := f.fault(ctx, keys...); err != nil {
		return nil, err
	}
	return f.inner.MGet(ctx, keys)
}

// Update implements Store.
func (f *Faulty) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	if err := f.fault(ctx, key); err != nil {
		return err
	}
	return f.inner.Update(ctx, key, fn)
}

// Len implements Store.
func (f *Faulty) Len(ctx context.Context) (int, error) {
	if err := f.fault(ctx); err != nil {
		return 0, err
	}
	return f.inner.Len(ctx)
}
