package kvstore

import (
	"context"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// errInjected marks a deliberate store failure in the tests below.
var errInjected = errors.New("injected store failure")

// shakyStore wraps a Store and fails selected operations on demand; when
// cancel is set it is invoked before an injected failure, modelling a
// replica that dies because the caller's deadline did.
type shakyStore struct {
	Store
	failGet    bool
	failSet    bool
	failDelete bool
	failUpdate bool
	cancel     context.CancelFunc
}

func (f *shakyStore) fail() error {
	if f.cancel != nil {
		f.cancel()
	}
	return errInjected
}

func (f *shakyStore) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if f.failGet {
		return nil, false, f.fail()
	}
	return f.Store.Get(ctx, key)
}

func (f *shakyStore) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	if f.failGet {
		return nil, f.fail()
	}
	return f.Store.MGet(ctx, keys)
}

func (f *shakyStore) Set(ctx context.Context, key string, val []byte) error {
	if f.failSet {
		return f.fail()
	}
	return f.Store.Set(ctx, key, val)
}

func (f *shakyStore) Delete(ctx context.Context, key string) (bool, error) {
	if f.failDelete {
		return false, f.fail()
	}
	return f.Store.Delete(ctx, key)
}

func (f *shakyStore) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	if f.failUpdate {
		return f.fail()
	}
	return f.Store.Update(ctx, key, fn)
}

// newFlakyCluster builds one shard group [primary, backup] of flaky
// wrappers around Locals, installed under a coordinator and router.
func newFlakyCluster(t *testing.T) (*Sharded, *Coordinator, *ShardGroup, *shakyStore, *shakyStore) {
	t.Helper()
	primary := &shakyStore{Store: NewLocal(4)}
	backup := &shakyStore{Store: NewLocal(4)}
	g, err := NewShardGroup("g0", primary, backup)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSharded(coord, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r, coord, g, primary, backup
}

func TestShardGroupAccessors(t *testing.T) {
	_, _, g, _, _ := newFlakyCluster(t)
	if got := g.Replicas(); got != 2 {
		t.Fatalf("Replicas() = %d, want 2", got)
	}
	if got := g.Version(); got != 1 {
		t.Fatalf("Version() = %d, want 1 after the coordinator install", got)
	}
}

// TestShardedReadFallback pins the read path's replica walk: a primary
// whose reads fail (but whose writes succeed, so it is never marked down)
// must answer from the backup, counting a read fallback, for both Get and
// the MGet batch path.
func TestShardedReadFallback(t *testing.T) {
	ctx := context.Background()
	r, _, g, primary, _ := newFlakyCluster(t)
	if err := r.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	primary.failGet = true
	v, ok, err := r.Get(ctx, "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get with failing primary = %q, %v, %v; want fallback to backup", v, ok, err)
	}
	vals, err := r.MGet(ctx, []string{"k"})
	if err != nil || len(vals) != 1 || string(vals[0]) != "v" {
		t.Fatalf("MGet with failing primary = %v, %v; want fallback to backup", vals, err)
	}
	if got := g.Stats().ReadFallbacks; got < 2 {
		t.Fatalf("ReadFallbacks = %d, want >= 2", got)
	}
}

// TestShardGroupNoLiveReplica drives a single-replica group into the
// all-down state and pins every path's terminal error: the failing write
// itself, the next write (down primary, nothing to promote), reads, MGet,
// and the Rejoin that cannot rebuild state with no live source.
func TestShardGroupNoLiveReplica(t *testing.T) {
	ctx := context.Background()
	st := &shakyStore{Store: NewLocal(4)}
	g, err := NewShardGroup("g0", st)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSharded(coord, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.failSet = true
	if err := r.Set(ctx, "k", []byte("v")); err == nil || !strings.Contains(err.Error(), "lost all replicas") {
		t.Fatalf("Set with every replica failing = %v, want lost-all-replicas", err)
	}
	st.failSet = false
	// The group is now permanently down: the primary index still points at
	// the dead replica and there is nothing to promote.
	if err := r.Set(ctx, "k", []byte("v")); err == nil || !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("Set after losing all replicas = %v, want no-live-replica", err)
	}
	if _, _, err := r.Get(ctx, "k"); err == nil || !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("Get after losing all replicas = %v, want no-live-replica", err)
	}
	if _, err := r.MGet(ctx, []string{"k"}); err == nil || !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("MGet after losing all replicas = %v, want no-live-replica", err)
	}
	if err := g.Rejoin(ctx, 0); err == nil || !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("Rejoin with no live source = %v, want no-live-replica", err)
	}
}

// TestShardedCancelledContext pins the ctx checks at the top of every
// group entry point, plus a cancellation that lands mid-write: the
// replica's failure is then reported as the caller's deadline, not a
// replica death, and the replica is not marked down.
func TestShardedCancelledContext(t *testing.T) {
	r, _, g, primary, backup := newFlakyCluster(t)
	if err := r.Set(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Set(cancelled, "k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Set with cancelled ctx = %v", err)
	}
	if _, _, err := r.Get(cancelled, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get with cancelled ctx = %v", err)
	}
	if _, err := r.MGet(cancelled, []string{"k"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MGet with cancelled ctx = %v", err)
	}
	if _, err := r.Len(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Len with cancelled ctx = %v", err)
	}

	// Primary dies because the deadline died: no promotion, no down mark.
	ctx, cancelMid := context.WithCancel(context.Background())
	primary.failSet = true
	primary.cancel = cancelMid
	if err := r.Set(ctx, "k", []byte("v2")); !errors.Is(err, errInjected) {
		t.Fatalf("Set cancelled mid-write = %v, want the injected error", err)
	}
	primary.failSet = false
	primary.cancel = nil
	if got := g.Stats().Promotes; got != 0 {
		t.Fatalf("Promotes = %d after a deadline death, want 0", got)
	}

	// Same for a backup dying under a cancelled deadline: the write fails
	// without marking the backup down.
	ctx2, cancelMid2 := context.WithCancel(context.Background())
	backup.failSet = true
	backup.cancel = cancelMid2
	if err := r.Set(ctx2, "k", []byte("v3")); !errors.Is(err, errInjected) {
		t.Fatalf("Set with backup cancelled mid-replication = %v", err)
	}
	backup.failSet = false
	backup.cancel = nil
	if got := g.Stats().SyncSkips; got != 0 {
		t.Fatalf("SyncSkips = %d after a deadline death, want 0", got)
	}
	if err := r.Set(context.Background(), "k", []byte("v4")); err != nil {
		t.Fatalf("Set after deadline deaths = %v, want both replicas still live", err)
	}
}

// TestShardGroupMissedDeletesAndRejoin walks the down-backup bookkeeping:
// a backup replication failure marks it down, deletes while down are
// recorded as missed (a state copy cannot un-delete), re-setting the key
// clears the missed record, and Rejoin's failure paths (delete replay,
// state stream) surface before a clean Rejoin restores the mirror.
func TestShardGroupMissedDeletesAndRejoin(t *testing.T) {
	ctx := context.Background()
	r, _, g, _, backup := newFlakyCluster(t)
	if err := r.Set(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	backup.failSet = true
	if err := r.Set(ctx, "b", []byte("2")); err != nil {
		t.Fatalf("Set with failing backup = %v, want success (backup marked down)", err)
	}
	backup.failSet = false
	if got := g.Stats().SyncSkips; got != 1 {
		t.Fatalf("SyncSkips = %d, want 1", got)
	}
	// Deletes while down are recorded as missed; a later re-set clears the
	// record so Rejoin does not un-delete a live key.
	if _, err := r.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set(ctx, "b", []byte("2b")); err != nil {
		t.Fatal(err)
	}

	backup.failDelete = true
	if err := g.Rejoin(ctx, 1); err == nil || !strings.Contains(err.Error(), "rejoin delete") {
		t.Fatalf("Rejoin with failing delete replay = %v", err)
	}
	backup.failDelete = false
	backup.failSet = true
	if err := g.Rejoin(ctx, 1); err == nil || !strings.Contains(err.Error(), "rejoin write") {
		t.Fatalf("Rejoin with failing state stream = %v", err)
	}
	backup.failSet = false
	if err := g.Rejoin(ctx, 1); err != nil {
		t.Fatalf("clean Rejoin = %v", err)
	}
	if _, ok, err := backup.Store.Get(ctx, "a"); err != nil || ok {
		t.Fatalf("backup still has deleted key a after Rejoin (ok=%v, err=%v)", ok, err)
	}
	v, ok, err := backup.Store.Get(ctx, "b")
	if err != nil || !ok || string(v) != "2b" {
		t.Fatalf("backup b after Rejoin = %q, %v, %v", v, ok, err)
	}
}

// TestRebalanceFailurePaths drives the freeze→transfer→flip handoff into
// each failure leg: a source primary whose reads fail aborts the transfer
// snapshot, a destination primary whose writes fail aborts the apply, a
// destination backup failure is absorbed (marked down), and a source
// primary whose deletes fail surfaces from the post-flip drop.
func TestRebalanceFailurePaths(t *testing.T) {
	ctx := context.Background()
	src := &shakyStore{Store: NewLocal(4)}
	dstPrimary := &shakyStore{Store: NewLocal(4)}
	dstBackup := &shakyStore{Store: NewLocal(4)}
	g0, err := NewShardGroup("g0", src)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := NewShardGroup("g1", dstPrimary, dstBackup)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(g0, g1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSharded(coord, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := "rebalance-key"
	if err := r.Set(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	slot := SlotForKey(key)
	m, _ := coord.View()
	var to string
	if m.GroupFor(slot) == 0 {
		to = "g1"
	} else {
		// The key landed on g1: swap roles so the flaky source is on the
		// moving side by moving it to g0 first... which g0 owns only if the
		// hash says so; simplest is to pick a g0-owned slot's key instead.
		t.Skip("key hashed to g1; covered when the hash lands on g0")
	}

	src.failGet = true
	if _, err := coord.Rebalance(ctx, slot, to); !errors.Is(err, errInjected) {
		t.Fatalf("Rebalance with failing transfer snapshot = %v", err)
	}
	src.failGet = false

	dstPrimary.failSet = true
	if _, err := coord.Rebalance(ctx, slot, to); !errors.Is(err, errInjected) {
		t.Fatalf("Rebalance with failing destination apply = %v", err)
	}
	dstPrimary.failSet = false

	// Both aborts unfroze the slot: writes must work again.
	if err := r.Set(ctx, key, []byte("v2")); err != nil {
		t.Fatalf("Set after aborted rebalances = %v, want the slot unfrozen", err)
	}

	src.failDelete = true
	if _, err := coord.Rebalance(ctx, slot, to); !errors.Is(err, errInjected) {
		t.Fatalf("Rebalance with failing source drop = %v", err)
	}
	src.failDelete = false
	// The drop failure happened after the flip: the destination owns the
	// slot and serves the key.
	v, ok, err := r.Get(ctx, key)
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Get after post-flip drop failure = %q, %v, %v", v, ok, err)
	}

	// A destination backup failure during apply is absorbed: the transfer
	// succeeds and the backup is marked down.
	key2 := pickKeyFor(t, coord, "g1")
	if err := r.Set(ctx, key2, []byte("w")); err != nil {
		t.Fatal(err)
	}
	// Rejoin g1's backup first (it may have been marked down above), then
	// fail it during the next transfer into g0... g0 has one replica, so
	// fail g1's backup on a move back into g1 instead.
	moved, err := coord.Rebalance(ctx, SlotForKey(key2), "g0")
	if err != nil || moved == 0 {
		t.Fatalf("Rebalance to g0 = %d, %v", moved, err)
	}
	if err := g1.Rejoin(ctx, 1); err != nil {
		t.Fatal(err)
	}
	dstBackup.failSet = true
	if _, err := coord.Rebalance(ctx, SlotForKey(key2), "g1"); err != nil {
		t.Fatalf("Rebalance with failing destination backup = %v, want absorbed", err)
	}
	dstBackup.failSet = false
	v, ok, err = r.Get(ctx, key2)
	if err != nil || !ok || string(v) != "w" {
		t.Fatalf("Get after backup-absorbing transfer = %q, %v, %v", v, ok, err)
	}
}

// pickKeyFor returns a key owned by the named group under the
// coordinator's current map.
func pickKeyFor(t *testing.T, coord *Coordinator, group string) string {
	t.Helper()
	m, _ := coord.View()
	gi := -1
	for i, name := range m.Groups {
		if name == group {
			gi = i
		}
	}
	if gi < 0 {
		t.Fatalf("group %q not in map", group)
	}
	for i := 0; i < 4096; i++ {
		k := "probe-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		if m.GroupFor(SlotForKey(k)) == gi {
			return k
		}
	}
	t.Fatalf("no key found for group %q", group)
	return ""
}

// TestShardedUnroutable pins the retry-loop bounds: a router whose map
// can never be refreshed past a wrong view (its version is ahead of the
// coordinator's) must give up with an unroutable error on reads, writes,
// and batches instead of spinning forever.
func TestShardedUnroutable(t *testing.T) {
	ctx := context.Background()
	_, coord, _, _, _ := newFlakyCluster(t)
	ghost, err := NewShardGroup("ghost", NewLocal(4))
	if err != nil {
		t.Fatal(err)
	}
	// ghost was never installed by a coordinator, so it owns no slots and
	// answers everything with ErrWrongServer. The crafted map's version is
	// ahead of the coordinator's, so refresh never replaces it.
	m := &ShardMap{Version: 99, Groups: []string{"ghost"}, Slots: make([]uint8, NumShardSlots)}
	r := &Sharded{coord: coord, cid: 1, m: m, groups: []*ShardGroup{ghost}}
	if _, _, err := r.Get(ctx, "k"); err == nil || !strings.Contains(err.Error(), "unroutable") {
		t.Fatalf("Get on a pinned-stale router = %v, want unroutable", err)
	}
	if err := r.Set(ctx, "k", []byte("v")); err == nil || !strings.Contains(err.Error(), "unroutable") {
		t.Fatalf("Set on a pinned-stale router = %v, want unroutable", err)
	}
	if _, err := r.MGet(ctx, []string{"k"}); err == nil || !strings.Contains(err.Error(), "unroutable") {
		t.Fatalf("MGet on a pinned-stale router = %v, want unroutable", err)
	}
	if got := r.Stats().Redirects; got == 0 {
		t.Fatal("Redirects = 0, want the retry loop counted")
	}
}

// TestShardedFrozenWriteGivesUp pins the frozen-slot bound: a slot frozen
// outside a rebalance (no flip will ever land) makes a write retry until
// the redirect budget runs out, counting frozen waits.
func TestShardedFrozenWriteGivesUp(t *testing.T) {
	ctx := context.Background()
	r, _, g, _, _ := newFlakyCluster(t)
	slot := SlotForKey("k")
	g.freeze(slot)
	if err := r.Set(ctx, "k", []byte("v")); err == nil || !strings.Contains(err.Error(), "unroutable") {
		t.Fatalf("Set on a permanently frozen slot = %v, want unroutable", err)
	}
	if got := r.Stats().FrozenWaits; got == 0 {
		t.Fatal("FrozenWaits = 0, want the retry loop counted")
	}
	g.unfreeze(slot)
	if err := r.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Set after unfreeze = %v", err)
	}
}

func TestApplyToUnknownKind(t *testing.T) {
	if _, _, err := applyTo(context.Background(), NewLocal(4), groupWrite{kind: 99, key: "k"}); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("applyTo with unknown kind = %v", err)
	}
}

func TestBuildTransferUnownedSlot(t *testing.T) {
	g, err := NewShardGroup("g0", NewLocal(4))
	if err != nil {
		t.Fatal(err)
	}
	// Never installed: the group owns nothing.
	if _, err := g.buildTransfer(context.Background(), 1, 0); err == nil || !strings.Contains(err.Error(), "unowned") {
		t.Fatalf("buildTransfer on an unowned slot = %v", err)
	}
}

// TestShardMapValidateRejects pins every structural check a corrupt or
// hand-built map can trip.
func TestShardMapValidateRejects(t *testing.T) {
	slots := make([]uint8, NumShardSlots)
	manyGroups := make([]string, 257)
	for i := range manyGroups {
		manyGroups[i] = "g" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	cases := []struct {
		name string
		m    *ShardMap
		want string
	}{
		{"no groups", &ShardMap{Slots: slots}, "no groups"},
		{"too many groups", &ShardMap{Groups: manyGroups, Slots: slots}, "max 256"},
		{"empty name", &ShardMap{Groups: []string{""}, Slots: slots}, "empty group name"},
		{"duplicate name", &ShardMap{Groups: []string{"a", "a"}, Slots: slots}, "duplicate group"},
		{"wrong slot count", &ShardMap{Groups: []string{"a"}, Slots: make([]uint8, 3)}, "want 256"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestDecodeShardMapTruncated pins the decoder's structural error legs not
// already exercised by the corrupt-payload table in shardmap_test.go.
func TestDecodeShardMapTruncated(t *testing.T) {
	version := binary.AppendUvarint(nil, 1)
	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"missing group count", version, "group count"},
		{"missing group length", binary.AppendUvarint(append([]byte(nil), version...), 1), "group 0 length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeShardMap(tc.b); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeShardMap = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestDecodeStateSyncRejectsCorrupt pins every decode error leg with
// hand-built payloads truncated at each field boundary.
func TestDecodeStateSyncRejectsCorrupt(t *testing.T) {
	uv := binary.AppendUvarint
	// header(version=1, slots=0)
	header := uv(uv(nil, 1), 0)
	// header + entries=1, key len 1 "k", val len 1 "v"
	oneEntry := append(append(append(uv(append([]byte(nil), header...), 1), uv(nil, 1)...), 'k'), append(uv(nil, 1), 'v')...)
	valid := EncodeStateSync(&StateSync{MapVersion: 1, Slots: []uint16{3},
		Entries: []SyncEntry{{Key: "k", Val: []byte("v")}}, Dedup: []DedupEntry{{CID: 1, Seq: 2}}})
	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"missing slot count", uv(nil, 1), "slot count"},
		{"missing entry count", header, "entry count"},
		{"missing key length", uv(append([]byte(nil), header...), 1), "key length"},
		{"truncated key", append(uv(uv(append([]byte(nil), header...), 1), 5), 'a', 'b'), "entry 0 key"},
		{"missing value length", append(uv(uv(append([]byte(nil), header...), 1), 1), 'k'), "value length"},
		{"truncated value", append(append(append(uv(uv(append([]byte(nil), header...), 1), 1), 'k'), uv(nil, 5)...), 'a'), "entry 0 value"},
		{"missing dedup count", oneEntry, "dedup count"},
		{"absurd dedup count", uv(append([]byte(nil), oneEntry...), 1<<40), "dedup entries"},
		{"missing dedup cid", uv(append([]byte(nil), oneEntry...), 1), "dedup 0 cid"},
		{"missing dedup seq", uv(uv(append([]byte(nil), oneEntry...), 1), 7), "dedup 0 seq"},
		{"trailing bytes", append(append([]byte(nil), valid...), 0), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeStateSync(tc.b); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeStateSync = %v, want %q", err, tc.want)
			}
		})
	}
}
