package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// newTestCluster builds n shard groups of two Local replicas each under a
// coordinator, returning the router, the coordinator, the groups, and the
// raw replica stores (replicas[group][role]).
func newTestCluster(t *testing.T, n int) (*Sharded, *Coordinator, []*ShardGroup, [][]*Local) {
	t.Helper()
	groups := make([]*ShardGroup, n)
	locals := make([][]*Local, n)
	for i := 0; i < n; i++ {
		locals[i] = []*Local{NewLocal(4), NewLocal(4)}
		g, err := NewShardGroup(fmt.Sprintf("g%d", i), locals[i][0], locals[i][1])
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	coord, err := NewCoordinator(groups...)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewSharded(coord, 1)
	if err != nil {
		t.Fatal(err)
	}
	return router, coord, groups, locals
}

// dumpLocal snapshots a Local's full contents.
func dumpLocal(l *Local) map[string]string {
	out := make(map[string]string)
	l.ForEach(func(k string, v []byte) bool {
		out[k] = string(v)
		return true
	})
	return out
}

func fillKeys(t *testing.T, s Store, n int) map[string]string {
	t.Helper()
	ctx := context.Background()
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("ns:key%04d", i)
		v := fmt.Sprintf("val%04d", i)
		if err := s.Set(ctx, k, []byte(v)); err != nil {
			t.Fatalf("set %s: %v", k, err)
		}
		want[k] = v
	}
	return want
}

func TestShardedBasicOps(t *testing.T) {
	ctx := context.Background()
	router, _, groups, _ := newTestCluster(t, 3)
	want := fillKeys(t, router, 200)

	for _, g := range groups {
		if g.OwnedSlots() == 0 {
			t.Errorf("group %s owns no slots", g.Name())
		}
	}
	for k, v := range want {
		got, ok, err := router.Get(ctx, k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("get %s = %q,%v,%v want %q", k, got, ok, err, v)
		}
	}
	if n, err := router.Len(ctx); err != nil || n != len(want) {
		t.Fatalf("len = %d,%v want %d", n, err, len(want))
	}

	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	keys = append(keys, "ns:absent")
	vals, err := router.MGet(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if k == "ns:absent" {
			if vals[i] != nil {
				t.Errorf("absent key returned %q", vals[i])
			}
			continue
		}
		if string(vals[i]) != want[k] {
			t.Errorf("mget %s = %q want %q", k, vals[i], want[k])
		}
	}

	if err := router.Update(ctx, "ns:key0000", func(cur []byte, exists bool) ([]byte, bool) {
		if !exists {
			t.Error("update saw missing key")
		}
		return append(cur, '!'), true
	}); err != nil {
		t.Fatal(err)
	}
	got, _, err := router.Get(ctx, "ns:key0000")
	if err != nil || string(got) != want["ns:key0000"]+"!" {
		t.Fatalf("after update: %q, %v", got, err)
	}

	existed, err := router.Delete(ctx, "ns:key0001")
	if err != nil || !existed {
		t.Fatalf("delete = %v,%v", existed, err)
	}
	if _, ok, _ := router.Get(ctx, "ns:key0001"); ok {
		t.Error("deleted key still present")
	}
	if n, _ := router.Len(ctx); n != len(want)-1 {
		t.Errorf("len after delete = %d want %d", n, len(want)-1)
	}

	// Update deciding to drop the key exercises the delete replication arm.
	if err := router.Update(ctx, "ns:key0002", func([]byte, bool) ([]byte, bool) {
		return nil, false
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := router.Get(ctx, "ns:key0002"); ok {
		t.Error("update-deleted key still present")
	}
}

func TestShardGroupBackupsMirrorPrimary(t *testing.T) {
	router, _, _, locals := newTestCluster(t, 2)
	fillKeys(t, router, 100)
	for gi := range locals {
		p, b := dumpLocal(locals[gi][0]), dumpLocal(locals[gi][1])
		if len(p) == 0 {
			t.Errorf("group %d primary is empty", gi)
		}
		if fmt.Sprint(p) != fmt.Sprint(b) {
			t.Errorf("group %d backup diverges from primary: %d vs %d keys", gi, len(p), len(b))
		}
	}
}

func TestShardGroupFailoverAndRejoin(t *testing.T) {
	ctx := context.Background()
	// Group 0's primary dies after 40 operations; the backup must take over
	// without a single failed write.
	primary := NewLocal(4)
	backup := NewLocal(4)
	faulty := NewFaulty(primary, 99)
	g0, err := NewShardGroup("g0", faulty, backup)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := NewShardGroup("g1", NewLocal(4), NewLocal(4))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(g0, g1)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewSharded(coord, 1)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetSchedule([]FaultPhase{{Ops: 40}, {FailRate: 1}})

	want := fillKeys(t, router, 300)
	if got := g0.Stats().Promotes; got != 1 {
		t.Fatalf("promotes = %d, want 1", got)
	}
	if g0.PrimaryIndex() != 1 {
		t.Fatalf("primary index = %d, want 1", g0.PrimaryIndex())
	}
	// A key is deleted while the old primary is down: Rejoin must replay the
	// missed delete, not just copy state.
	if _, err := router.Delete(ctx, "ns:key0000"); err != nil {
		t.Fatal(err)
	}
	delete(want, "ns:key0000")
	for k, v := range want {
		got, ok, err := router.Get(ctx, k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("get %s after failover = %q,%v,%v", k, got, ok, err)
		}
	}

	// The dead replica recovers: catch it up and check byte equality with
	// the acting primary.
	faulty.SetSchedule(nil)
	if err := g0.Rejoin(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(dumpLocal(primary)) != fmt.Sprint(dumpLocal(backup)) {
		t.Fatal("rejoined replica diverges from acting primary")
	}
	if _, ok := dumpLocal(primary)["ns:key0000"]; ok {
		t.Fatal("rejoin resurrected a deleted key")
	}
	// Rejoin of a live replica is a no-op; out-of-range replica is an error.
	if err := g0.Rejoin(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := g0.Rejoin(ctx, 5); err == nil {
		t.Fatal("rejoin of unknown replica accepted")
	}
}

// TestShardGroupDedupReplay proves exactly-once application: replaying a
// duplicate (CID, SeqNo) write — here an appending Update, where a double
// application is visible — acknowledges without applying.
func TestShardGroupDedupReplay(t *testing.T) {
	ctx := context.Background()
	_, _, groups, _ := newTestCluster(t, 1)
	g := groups[0]
	key := "ns:counter"
	slot := SlotForKey(key)
	appendByte := groupWrite{kind: writeUpdate, key: key, fn: func(cur []byte, exists bool) ([]byte, bool) {
		return append(cur, 'x'), true
	}}
	if _, err := g.apply(ctx, slot, 7, 1, appendByte); err != nil {
		t.Fatal(err)
	}
	// The duplicate delivery: same client, same sequence number.
	if _, err := g.apply(ctx, slot, 7, 1, appendByte); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := g.read(ctx, slot, func(st Store) error {
		v, _, err := st.Get(ctx, key)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "x" {
		t.Fatalf("after replayed duplicate, value = %q, want %q (applied exactly once)", got, "x")
	}
	if hits := g.Stats().DedupHits; hits != 1 {
		t.Fatalf("dedup hits = %d, want 1", hits)
	}
	// A fresh sequence number from the same client applies normally.
	if _, err := g.apply(ctx, slot, 7, 2, appendByte); err != nil {
		t.Fatal(err)
	}
	if err := g.read(ctx, slot, func(st Store) error {
		v, _, err := st.Get(ctx, key)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "xx" {
		t.Fatalf("after fresh sequence, value = %q, want %q", got, "xx")
	}
}

func TestRebalanceMovesSlotAndDedup(t *testing.T) {
	ctx := context.Background()
	router, coord, groups, locals := newTestCluster(t, 2)
	want := fillKeys(t, router, 300)

	// Pick a populated slot owned by group 0.
	m, _ := coord.View()
	slot := -1
	for k := range want {
		if s := SlotForKey(k); m.GroupFor(s) == 0 {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Fatal("no populated slot on group 0")
	}
	moved, err := coord.Rebalance(ctx, slot, "g1")
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("rebalance moved no keys")
	}
	if v := coord.Stats(); v.Version != 2 || v.Rebalances != 1 || v.MovedKeys != uint64(moved) {
		t.Fatalf("coordinator stats = %+v", v)
	}

	// Every key still reads back through the router; the moved keys now
	// live on group 1's replicas and are gone from group 0's.
	for k, v := range want {
		got, ok, err := router.Get(ctx, k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("get %s after rebalance = %q,%v,%v", k, got, ok, err)
		}
		onSrc := dumpLocal(locals[0][0])[k] != "" || dumpLocal(locals[0][1])[k] != ""
		if SlotForKey(k) == slot && onSrc {
			t.Fatalf("moved key %s still on source group", k)
		}
	}
	if n, err := router.Len(ctx); err != nil || n != len(want) {
		t.Fatalf("len after rebalance = %d,%v want %d", n, err, len(want))
	}
	// Rebalancing a slot onto its current owner is a no-op; bad targets and
	// slots are errors.
	if n, err := coord.Rebalance(ctx, slot, "g1"); err != nil || n != 0 {
		t.Fatalf("no-op rebalance = %d,%v", n, err)
	}
	if _, err := coord.Rebalance(ctx, slot, "nope"); err == nil {
		t.Fatal("unknown target group accepted")
	}
	if _, err := coord.Rebalance(ctx, NumShardSlots, "g1"); err == nil {
		t.Fatal("out-of-range slot accepted")
	}

	// The dedup table traveled with the slot: a write the old owner already
	// applied deduplicates against the new owner. Group-level apply with the
	// router's cid and an already-used sequence number must hit the table.
	var k0 string
	for k := range want {
		if SlotForKey(k) == slot {
			k0 = k
			break
		}
	}
	before, _, _ := router.Get(ctx, k0)
	if _, err := groups[1].apply(ctx, slot, 1, 1, groupWrite{kind: writeSet, key: k0, val: []byte("clobber")}); err != nil {
		t.Fatal(err)
	}
	after, _, _ := router.Get(ctx, k0)
	if string(before) != string(after) {
		t.Fatalf("replayed pre-move write applied again: %q → %q", before, after)
	}
	if groups[1].Stats().DedupHits == 0 {
		t.Fatal("dedup table did not travel with the slot")
	}
}

func TestStaleRouterRedirects(t *testing.T) {
	ctx := context.Background()
	router, coord, _, _ := newTestCluster(t, 2)
	want := fillKeys(t, router, 100)

	// A second client routes on the version-1 map...
	stale, err := NewSharded(coord, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ...while four slots move underneath it.
	m, _ := coord.View()
	movedSlots := map[int]bool{}
	for s := 0; s < NumShardSlots && len(movedSlots) < 4; s++ {
		if m.GroupFor(s) == 0 {
			if _, err := coord.Rebalance(ctx, s, "g1"); err != nil {
				t.Fatal(err)
			}
			movedSlots[s] = true
		}
	}
	if stale.MapVersion() != 1 {
		t.Fatalf("stale router already at version %d", stale.MapVersion())
	}
	// Reads and writes through the stale router recover transparently.
	for k, v := range want {
		got, ok, err := stale.Get(ctx, k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("stale get %s = %q,%v,%v", k, got, ok, err)
		}
	}
	if err := stale.Set(ctx, "ns:new-key", []byte("nv")); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := router.Get(ctx, "ns:new-key"); !ok || string(got) != "nv" {
		t.Fatalf("write via stale router not visible: %q,%v", got, ok)
	}
	if stale.Stats().Redirects == 0 {
		t.Fatal("stale router recovered without drawing ErrWrongServer")
	}
	if stale.MapVersion() != coord.Stats().Version {
		t.Fatalf("stale router still at version %d, coordinator at %d", stale.MapVersion(), coord.Stats().Version)
	}
	// MGet spanning moved and unmoved slots recovers the same way.
	stale2, err := NewSharded(coord, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Regress the cluster back: move one slot again so stale2's fresh map
	// goes stale mid-test.
	for s := range movedSlots {
		if _, err := coord.Rebalance(ctx, s, "g0"); err != nil {
			t.Fatal(err)
		}
		break
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	vals, err := stale2.MGet(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if string(vals[i]) != want[k] {
			t.Errorf("stale mget %s = %q want %q", k, vals[i], want[k])
		}
	}
}

func TestFrozenSlotBlocksWritesNotReads(t *testing.T) {
	ctx := context.Background()
	router, _, groups, _ := newTestCluster(t, 2)
	want := fillKeys(t, router, 50)
	var key string
	for k := range want {
		key = k
		break
	}
	slot := SlotForKey(key)
	var g *ShardGroup
	for _, cand := range groups {
		if err := cand.read(ctx, slot, func(Store) error { return nil }); err == nil {
			g = cand
		}
	}
	g.freeze(slot)
	// Reads keep serving from a frozen slot.
	if got, ok, err := router.Get(ctx, key); err != nil || !ok || string(got) != want[key] {
		t.Fatalf("frozen read = %q,%v,%v", got, ok, err)
	}
	// Writes exhaust the retry bound — no coordinator move is in flight, so
	// the freeze never lifts and the router reports it instead of spinning
	// forever.
	if err := router.Set(ctx, key, []byte("nope")); !errors.Is(err, ErrSlotFrozen) {
		t.Fatalf("frozen write error = %v", err)
	}
	if router.Stats().FrozenWaits == 0 {
		t.Fatal("frozen write drew no FrozenWaits")
	}
	g.unfreeze(slot)
	if err := router.Set(ctx, key, []byte("yes")); err != nil {
		t.Fatal(err)
	}
}

func TestShardedConstructorValidation(t *testing.T) {
	if _, err := NewShardGroup("", NewLocal(1)); err == nil {
		t.Error("unnamed group accepted")
	}
	if _, err := NewShardGroup("g0"); err == nil {
		t.Error("replica-less group accepted")
	}
	if _, err := NewShardGroup("g0", nil); err == nil {
		t.Error("nil replica accepted")
	}
	if _, err := NewCoordinator(); err == nil {
		t.Error("group-less coordinator accepted")
	}
	if _, err := NewCoordinator(nil); err == nil {
		t.Error("nil group accepted")
	}
	g0, _ := NewShardGroup("dup", NewLocal(1))
	g1, _ := NewShardGroup("dup", NewLocal(1))
	if _, err := NewCoordinator(g0, g1); err == nil {
		t.Error("duplicate group names accepted")
	}
	coord, err := NewCoordinator(g0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharded(coord, 0); err == nil {
		t.Error("zero client id accepted")
	}
	if _, err := NewSharded(nil, 1); err == nil {
		t.Error("nil coordinator accepted")
	}
}

// TestShardedConcurrentRebalance hammers the router from writer and reader
// goroutines while the coordinator migrates slots back and forth — the
// race-detector drill for the freeze→transfer→flip handoff. Readers must
// never see an error or a stale value for an already-written key.
func TestShardedConcurrentRebalance(t *testing.T) {
	ctx := context.Background()
	router, coord, _, _ := newTestCluster(t, 3)
	seed := fillKeys(t, router, 120)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-goroutine routers model independent clients; distinct key
			// ranges keep the single-writer-per-key discipline.
			r, err := NewSharded(coord, uint64(100+w))
			if err != nil {
				errc <- err
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("w%d:key%04d", w, i%50)
				if err := r.Set(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := NewSharded(coord, 200)
		if err != nil {
			errc <- err
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("ns:key%04d", i%120)
			v, ok, err := r.Get(ctx, k)
			if err != nil {
				errc <- fmt.Errorf("reader: %w", err)
				return
			}
			if !ok || string(v) != seed[k] {
				errc <- fmt.Errorf("reader: %s = %q,%v want %q", k, v, ok, seed[k])
				return
			}
		}
	}()

	// Drive migrations: every slot in a band ping-pongs between groups.
	for round := 0; round < 6; round++ {
		target := fmt.Sprintf("g%d", round%3)
		for slot := 0; slot < 24; slot++ {
			if _, err := coord.Rebalance(ctx, slot, target); err != nil {
				t.Errorf("rebalance round %d slot %d: %v", round, slot, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// Post-quiescence: all seeded keys intact.
	for k, v := range seed {
		got, ok, err := router.Get(ctx, k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("after churn, %s = %q,%v,%v want %q", k, got, ok, err, v)
		}
	}
}
