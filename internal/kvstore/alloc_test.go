package kvstore

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"
)

// TestFNV1a32MatchesStdlib pins the inlined shard hash to hash/fnv: if the
// two ever diverge, keys silently land on different shards and per-shard
// invariants (single-writer assumptions, shard statistics) break.
func TestFNV1a32MatchesStdlib(t *testing.T) {
	keys := []string{"", "a", "uv:user-42", "sim:video-7", "some/longer:key-with-separators", "\x00\xff"}
	for i := 0; i < 100; i++ {
		keys = append(keys, fmt.Sprintf("model/global.iv:video-%d", i))
	}
	for _, k := range keys {
		h := fnv.New32a()
		h.Write([]byte(k))
		if want, got := h.Sum32(), fnv1a32(k); got != want {
			t.Fatalf("fnv1a32(%q) = %#x, stdlib says %#x", k, got, want)
		}
	}
}

// TestShardForDoesNotAllocate is the serving-path guarantee: computing a
// key's shard must not touch the heap (hash/fnv's New32a allocates its
// hash.Hash32 on every call, which this replaced).
func TestShardForDoesNotAllocate(t *testing.T) {
	l := NewLocal(8)
	key := "model/global.iv:video-123"
	if avg := testing.AllocsPerRun(1000, func() {
		_ = l.shardFor(key)
	}); avg != 0 {
		t.Fatalf("shardFor allocates %v objects per call, want 0", avg)
	}
}

// TestGetAllocations bounds Local.Get to its single unavoidable allocation:
// the defensive copy of the value handed to the caller.
func TestGetAllocations(t *testing.T) {
	ctx := context.Background()
	l := NewLocal(8)
	if err := l.Set(ctx, "k", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, ok, err := l.Get(ctx, "k"); err != nil || !ok {
			t.Fatal("Get failed")
		}
	}); avg > 1 {
		t.Fatalf("Local.Get allocates %v objects per call, want ≤ 1 (the value copy)", avg)
	}
}

// TestDecodeFloatsIntoReuse verifies the buffer-reuse decode: with an
// adequately sized destination it must not allocate, and it must produce the
// same values as the allocating form.
func TestDecodeFloatsIntoReuse(t *testing.T) {
	v := []float64{1.5, -2.25, 3.125, 0, 1e300, -1e-300}
	enc := EncodeFloats(v)

	dst := make([]float64, 0, len(v))
	got, err := DecodeFloatsInto(dst, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(v) {
		t.Fatalf("decoded %d values, want %d", len(got), len(v))
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("value %d = %v, want %v", i, got[i], v[i])
		}
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := DecodeFloatsInto(dst, enc); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("DecodeFloatsInto with adequate capacity allocates %v objects per call, want 0", avg)
	}

	// Undersized destination must grow rather than truncate.
	small := make([]float64, 0, 2)
	grown, err := DecodeFloatsInto(small, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) != len(v) || grown[5] != v[5] {
		t.Fatalf("grown decode = %v, want %v", grown, v)
	}

	// Corrupt input still rejected.
	if _, err := DecodeFloatsInto(nil, enc[:7]); err == nil {
		t.Fatal("DecodeFloatsInto accepted a truncated encoding")
	}
}

// TestAppendFloatsRoundTrip checks the append-form encoder against the
// allocating one, including appending after existing bytes.
func TestAppendFloatsRoundTrip(t *testing.T) {
	v := []float64{3.5, -7.25}
	prefix := []byte{0xAA, 0xBB}
	buf := AppendFloats(append([]byte(nil), prefix...), v)
	if len(buf) != len(prefix)+8*len(v) {
		t.Fatalf("AppendFloats length = %d, want %d", len(buf), len(prefix)+8*len(v))
	}
	dec, err := DecodeFloats(buf[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if dec[i] != v[i] {
			t.Fatalf("round trip value %d = %v, want %v", i, dec[i], v[i])
		}
	}
}
