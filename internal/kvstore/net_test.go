package kvstore

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(context.Background(), NewLocal(8), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := DialContext(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestClientServerBasicOps(t *testing.T) {
	_, cli := newTestServer(t)

	if err := cli.Set(context.Background(), "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cli.Get(context.Background(), "k")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := cli.Get(context.Background(), "missing"); ok {
		t.Error("Get(missing) reported a hit")
	}
	if n, _ := cli.Len(context.Background()); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
	if ok, _ := cli.Delete(context.Background(), "k"); !ok {
		t.Error("Delete = false, want true")
	}
	if n, _ := cli.Len(context.Background()); n != 0 {
		t.Errorf("Len after delete = %d, want 0", n)
	}
}

func TestClientServerMGet(t *testing.T) {
	_, cli := newTestServer(t)
	cli.Set(context.Background(), "a", []byte("1"))
	cli.Set(context.Background(), "b", []byte("2"))
	vals, err := cli.MGet(context.Background(), []string{"b", "x", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "2" || vals[1] != nil || string(vals[2]) != "1" {
		t.Errorf("MGet = %q", vals)
	}
}

func TestClientServerUpdate(t *testing.T) {
	_, cli := newTestServer(t)
	cli.Set(context.Background(), "n", EncodeInt64(41))
	err := cli.Update(context.Background(), "n", func(cur []byte, exists bool) ([]byte, bool) {
		n, _ := DecodeInt64(cur)
		return EncodeInt64(n + 1), true
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := cli.Get(context.Background(), "n")
	if n, _ := DecodeInt64(v); n != 42 {
		t.Errorf("value after Update = %d, want 42", n)
	}
	// Update with ok=false deletes.
	cli.Update(context.Background(), "n", func([]byte, bool) ([]byte, bool) { return nil, false })
	if _, ok, _ := cli.Get(context.Background(), "n"); ok {
		t.Error("Update delete left key present")
	}
}

func TestClientConcurrentAccess(t *testing.T) {
	_, cli := newTestServer(t)
	const workers, keys = 8, 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := cli.Set(context.Background(), key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				v, ok, err := cli.Get(context.Background(), key)
				if err != nil || !ok || string(v) != key {
					t.Errorf("Get(%s) = %q,%v,%v", key, v, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := cli.Len(context.Background()); n != workers*keys {
		t.Errorf("Len = %d, want %d", n, workers*keys)
	}
}

func TestClientAfterServerClose(t *testing.T) {
	srv, err := NewServer(context.Background(), NewLocal(1), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialContext(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close()
	if err := cli.Set(context.Background(), "k", nil); err == nil {
		t.Error("Set after server close succeeded, want error")
	}
}

func TestDialRefused(t *testing.T) {
	if _, err := DialContext(context.Background(), "127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port succeeded, want error")
	}
}

func TestClientClosedRejectsOps(t *testing.T) {
	_, cli := newTestServer(t)
	cli.Close()
	if _, _, err := cli.Get(context.Background(), "k"); err == nil {
		t.Error("Get on closed client succeeded, want error")
	}
}
