package kvstore

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"vidrec/internal/metrics"
)

// ErrWrongServer is returned by a shard group asked to serve a slot it does
// not own — the signal a client is routing on a stale shard map. The client
// refreshes its map from the coordinator and retries; the coordinator's
// mutex makes the refresh block out any in-flight rebalance, so one retry
// lands on the new owner.
var ErrWrongServer = fmt.Errorf("kvstore: wrong server for shard slot")

// ErrSlotFrozen is returned for writes to a slot that is mid-handoff. Reads
// are never frozen — the source keeps serving them until the flip — and the
// client's refresh-and-retry loop parks on the coordinator mutex until the
// handoff completes, so callers never observe this error.
var ErrSlotFrozen = fmt.Errorf("kvstore: shard slot frozen for handoff")

// ShardGroup is one partition's replica set: a primary plus backups holding
// identical copies of every key in the group's slots. Writes apply to the
// primary and replicate synchronously to live backups; a primary failure
// promotes the next live replica mid-write, so a single replica loss never
// fails a write or loses applied state. Client writes carry a (CID, SeqNo)
// identity recorded in a dedup table, so a duplicate delivery — an
// at-least-once upstream retrying a write that already applied — is
// acknowledged without applying twice.
//
// The group tracks its keys per slot in an in-memory index, which is what
// makes slot handoff and replica catch-up possible over the plain Store
// interface: remote backends cannot be enumerated, but the index can.
type ShardGroup struct {
	name string

	mu       sync.RWMutex
	replicas []Store                            // fixed at construction; health in down
	down     []bool                             // guarded by mu
	primary  int                                // guarded by mu
	version  uint64                             // guarded by mu; installed shard-map version
	owned    [NumShardSlots]bool                // guarded by mu
	frozen   [NumShardSlots]bool                // guarded by mu
	keys     [NumShardSlots]map[string]struct{} // guarded by mu; per-slot key index
	applied  map[DedupEntry]struct{}            // guarded by mu; client writes already applied
	missed   []map[string]struct{}              // guarded by mu; deletes each down replica missed

	promotes      metrics.Counter // primary failovers
	syncSkips     metrics.Counter // backup replications skipped or failed
	dedupHits     metrics.Counter // duplicate client writes acknowledged without applying
	readFallbacks metrics.Counter // reads answered by a non-primary replica
}

// NewShardGroup builds a group over the given replicas; the first is the
// initial primary. The group owns no slots until a Coordinator installs a
// shard map.
func NewShardGroup(name string, replicas ...Store) (*ShardGroup, error) {
	if name == "" {
		return nil, fmt.Errorf("kvstore: shard group needs a name")
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("kvstore: shard group %s needs at least one replica", name)
	}
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("kvstore: shard group %s replica %d is nil", name, i)
		}
	}
	return &ShardGroup{
		name:     name,
		replicas: append([]Store(nil), replicas...),
		down:     make([]bool, len(replicas)),
		applied:  make(map[DedupEntry]struct{}),
		missed:   make([]map[string]struct{}, len(replicas)),
	}, nil
}

// Name returns the group's name.
func (g *ShardGroup) Name() string { return g.name }

// Replicas reports the replica count.
func (g *ShardGroup) Replicas() int { return len(g.replicas) }

// PrimaryIndex reports which replica currently serves as primary.
func (g *ShardGroup) PrimaryIndex() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.primary
}

// Version reports the installed shard-map version.
func (g *ShardGroup) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// OwnedSlots reports how many slots the group currently owns.
func (g *ShardGroup) OwnedSlots() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, o := range g.owned {
		if o {
			n++
		}
	}
	return n
}

// GroupStats is a point-in-time snapshot of the group's counters.
type GroupStats struct {
	Promotes      uint64 // primary failovers
	SyncSkips     uint64 // backup replications skipped (replica marked down)
	DedupHits     uint64 // duplicate client writes acknowledged without applying
	ReadFallbacks uint64 // reads answered by a non-primary replica
}

// Stats returns the group's counters.
func (g *ShardGroup) Stats() GroupStats {
	return GroupStats{
		Promotes:      g.promotes.Load(),
		SyncSkips:     g.syncSkips.Load(),
		DedupHits:     g.dedupHits.Load(),
		ReadFallbacks: g.readFallbacks.Load(),
	}
}

// Write kinds carried by groupWrite.
const (
	writeSet byte = iota + 1
	writeDelete
	writeUpdate
)

// groupWrite is one mutation routed to a group: a Set, a Delete, or an
// Update whose callback runs exactly once on the primary with the captured
// result replicated to backups (the same apply-once discipline Replicated
// documents for its Update).
type groupWrite struct {
	kind byte
	key  string
	val  []byte
	fn   func(cur []byte, exists bool) ([]byte, bool)
}

// apply routes one write to the group. Ownership and freeze are checked
// under the same lock the write applies under, so a slot handoff can never
// interleave with a write to the moving slot. The returned existed bit is
// meaningful for deletes; a deduplicated replay reports existed=false (the
// outcome already happened — replay results are acknowledgements, not
// reads).
func (g *ShardGroup) apply(ctx context.Context, slot int, cid, seq uint64, w groupWrite) (existed bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if !g.owned[slot] {
		return false, ErrWrongServer
	}
	if g.frozen[slot] {
		return false, ErrSlotFrozen
	}
	id := DedupEntry{CID: cid, Seq: seq}
	if cid != 0 {
		if _, dup := g.applied[id]; dup {
			g.dedupHits.Inc()
			return false, nil
		}
	}

	// Apply on the primary, promoting past dead replicas: a failure marks
	// the primary down and the next live replica — which holds every
	// previously applied write — takes over and applies this one.
	var rep groupWrite
	for {
		if g.down[g.primary] {
			if !g.promoteLocked() {
				return false, fmt.Errorf("kvstore: shard group %s has no live replica", g.name)
			}
			continue
		}
		existed, rep, err = applyTo(ctx, g.replicas[g.primary], w)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return false, err // the caller's deadline died, not the replica
		}
		g.down[g.primary] = true
		if !g.promoteLocked() {
			return false, fmt.Errorf("kvstore: shard group %s lost all replicas: %w", g.name, err)
		}
	}

	// Replicate the captured result to live backups; a backup that fails is
	// marked down (stale until Rejoin) rather than failing the write.
	for i := range g.replicas {
		if i == g.primary || g.down[i] {
			continue
		}
		if rerr := replicateTo(ctx, g.replicas[i], rep); rerr != nil {
			if ctx.Err() != nil {
				return existed, rerr
			}
			g.down[i] = true
			g.syncSkips.Inc()
		}
	}

	// Bookkeeping: the slot's key index, missed deletes for down replicas
	// (Rejoin replays them — a full-state copy alone cannot un-delete), and
	// the dedup table.
	if rep.kind == writeDelete {
		if g.keys[slot] != nil {
			delete(g.keys[slot], w.key)
		}
		for i := range g.replicas {
			if g.down[i] {
				if g.missed[i] == nil {
					g.missed[i] = make(map[string]struct{})
				}
				g.missed[i][w.key] = struct{}{}
			}
		}
	} else {
		if g.keys[slot] == nil {
			g.keys[slot] = make(map[string]struct{})
		}
		g.keys[slot][w.key] = struct{}{}
		for i := range g.replicas {
			if g.down[i] && g.missed[i] != nil {
				delete(g.missed[i], w.key)
			}
		}
	}
	if cid != 0 {
		g.applied[id] = struct{}{}
	}
	return existed, nil
}

// applyTo runs one write against a store and returns the replication op for
// backups: an Update's callback runs here, exactly once, and backups get
// the captured Set/Delete result.
func applyTo(ctx context.Context, st Store, w groupWrite) (existed bool, rep groupWrite, err error) {
	switch w.kind {
	case writeSet:
		return false, w, st.Set(ctx, w.key, w.val)
	case writeDelete:
		existed, err = st.Delete(ctx, w.key)
		return existed, w, err
	case writeUpdate:
		var next []byte
		var keep bool
		err = st.Update(ctx, w.key, func(cur []byte, exists bool) ([]byte, bool) {
			next, keep = w.fn(cur, exists)
			return next, keep
		})
		if err != nil {
			return false, rep, err
		}
		if keep {
			return false, groupWrite{kind: writeSet, key: w.key, val: next}, nil
		}
		return false, groupWrite{kind: writeDelete, key: w.key}, nil
	default:
		return false, rep, fmt.Errorf("kvstore: shard group write kind %d unknown", w.kind)
	}
}

// replicateTo applies a captured write result to a backup.
func replicateTo(ctx context.Context, st Store, rep groupWrite) error {
	if rep.kind == writeDelete {
		_, err := st.Delete(ctx, rep.key)
		return err
	}
	return st.Set(ctx, rep.key, rep.val)
}

// read serves one read-only op for a slot. Ownership is checked and the op
// runs under the same read lock, so a concurrent handoff cannot delete the
// slot's keys out from under an admitted read — the never-drop-reads half
// of the rebalance contract. Frozen slots serve reads normally. On a
// primary error the op re-runs against live backups (it must be idempotent
// and overwrite its outputs, which the router's closures are).
func (g *ShardGroup) read(ctx context.Context, slot int, op func(Store) error) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if !g.owned[slot] {
		return ErrWrongServer
	}
	return g.readLocked(op)
}

// readMulti is read over a batch of slots (the router's MGet): every slot
// must be owned, and the whole batch answers from one replica.
func (g *ShardGroup) readMulti(ctx context.Context, slots []int, op func(Store) error) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, s := range slots {
		if !g.owned[s] {
			return ErrWrongServer
		}
	}
	return g.readLocked(op)
}

// readLocked runs op against the primary, falling back to live backups.
// Read-path failures never mark a replica down — that is the write path's
// call, made under the write lock. The caller holds mu.
func (g *ShardGroup) readLocked(op func(Store) error) error {
	var firstErr error
	if p := g.primary; !g.down[p] {
		if err := op(g.replicas[p]); err == nil {
			return nil
		} else {
			firstErr = fmt.Errorf("primary %d: %w", p, err)
		}
	}
	for i := range g.replicas {
		if i == g.primary || g.down[i] {
			continue
		}
		if err := op(g.replicas[i]); err == nil {
			g.readFallbacks.Inc()
			return nil
		} else if firstErr == nil {
			firstErr = fmt.Errorf("backup %d: %w", i, err)
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("kvstore: shard group %s has no live replica", g.name)
	}
	return firstErr
}

// lenOwned counts the group's keys from the slot index — no store round
// trip, and slots mid-handoff are never double counted: the destination
// counts a moving slot only after the flip, the source only before.
func (g *ShardGroup) lenOwned(ctx context.Context) (int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := 0
	for s := range g.keys {
		if g.owned[s] {
			n += len(g.keys[s])
		}
	}
	return n, nil
}

// promoteLocked moves the primary to the next live replica.
// The caller holds mu.
func (g *ShardGroup) promoteLocked() bool {
	for i := range g.replicas {
		if !g.down[i] {
			if i != g.primary {
				g.primary = i
				g.promotes.Inc()
			}
			return true
		}
	}
	return false
}

// install publishes a shard-map revision to the group: its new ownership
// set and version. All freezes clear — a freeze exists only inside the
// coordinator's rebalance critical section, and install is its last step.
func (g *ShardGroup) install(version uint64, owned *[NumShardSlots]bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.version = version
	g.owned = *owned
	g.frozen = [NumShardSlots]bool{}
}

// freeze blocks writes to a slot while its handoff is in flight. Reads
// keep serving.
func (g *ShardGroup) freeze(slot int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.frozen[slot] = true
}

// unfreeze reverts freeze on an aborted handoff.
func (g *ShardGroup) unfreeze(slot int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.frozen[slot] = false
}

// buildTransfer snapshots one slot's state — keys, values, and the dedup
// table — as a StateSync payload for the handoff's transfer step. The slot
// must be frozen by the caller, so the snapshot cannot race a write.
func (g *ShardGroup) buildTransfer(ctx context.Context, mapVersion uint64, slot int) (*StateSync, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.owned[slot] {
		return nil, fmt.Errorf("kvstore: shard group %s asked to transfer unowned slot %d", g.name, slot)
	}
	return g.buildSyncLocked(ctx, mapVersion, []int{slot})
}

// buildSyncLocked assembles a StateSync over the given slots, reading every
// indexed key from the primary in sorted order so the payload bytes are a
// deterministic function of state. The caller holds mu.
func (g *ShardGroup) buildSyncLocked(ctx context.Context, mapVersion uint64, slots []int) (*StateSync, error) {
	if g.down[g.primary] && !g.promoteLocked() {
		return nil, fmt.Errorf("kvstore: shard group %s has no live replica", g.name)
	}
	p := g.replicas[g.primary]
	s := &StateSync{MapVersion: mapVersion}
	for _, slot := range slots {
		s.Slots = append(s.Slots, uint16(slot))
		for _, k := range sortedKeys(g.keys[slot]) {
			v, ok, err := p.Get(ctx, k)
			if err != nil {
				return nil, fmt.Errorf("kvstore: shard group %s transfer read %q: %w", g.name, k, err)
			}
			if !ok {
				return nil, fmt.Errorf("kvstore: shard group %s index lists %q but the primary lacks it", g.name, k)
			}
			s.Entries = append(s.Entries, SyncEntry{Key: k, Val: v})
		}
	}
	s.Dedup = make([]DedupEntry, 0, len(g.applied))
	for d := range g.applied {
		s.Dedup = append(s.Dedup, d)
	}
	sort.Slice(s.Dedup, func(i, j int) bool {
		if s.Dedup[i].CID != s.Dedup[j].CID {
			return s.Dedup[i].CID < s.Dedup[j].CID
		}
		return s.Dedup[i].Seq < s.Dedup[j].Seq
	})
	return s, nil
}

// applyTransfer installs a StateSync payload: every entry writes to every
// live replica, the slot index absorbs the keys, and the dedup table merges
// — so a client retrying a write that applied before the move still
// deduplicates against the new owner. Ownership of the transferred slots
// arrives separately, via install, at the flip.
func (g *ShardGroup) applyTransfer(ctx context.Context, s *StateSync) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range s.Entries {
		slot := SlotForKey(e.Key)
		for i := range g.replicas {
			if g.down[i] {
				continue
			}
			if err := g.replicas[i].Set(ctx, e.Key, e.Val); err != nil {
				if i == g.primary {
					return fmt.Errorf("kvstore: shard group %s transfer write %q: %w", g.name, e.Key, err)
				}
				g.down[i] = true
				g.syncSkips.Inc()
			}
		}
		if g.keys[slot] == nil {
			g.keys[slot] = make(map[string]struct{})
		}
		g.keys[slot][e.Key] = struct{}{}
	}
	for _, d := range s.Dedup {
		g.applied[d] = struct{}{}
	}
	return nil
}

// dropSlot deletes a moved slot's data from every live replica after the
// flip, returning how many keys it removed. The group no longer owns the
// slot, so reads racing the deletion already redirect to the new owner.
func (g *ShardGroup) dropSlot(ctx context.Context, slot int) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := sortedKeys(g.keys[slot])
	for _, k := range names {
		for i := range g.replicas {
			if g.down[i] {
				continue
			}
			if _, err := g.replicas[i].Delete(ctx, k); err != nil {
				if i == g.primary {
					return 0, fmt.Errorf("kvstore: shard group %s drop %q: %w", g.name, k, err)
				}
				g.down[i] = true
				g.syncSkips.Inc()
			}
		}
	}
	g.keys[slot] = nil
	return len(names), nil
}

// Rejoin brings a down replica back: missed deletes replay first (a state
// copy cannot un-delete), then the primary's full current state streams
// over — through the StateSync wire codec, the same bytes a remote
// catch-up would ship — and the replica rejoins the live set.
func (g *ShardGroup) Rejoin(ctx context.Context, replica int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if replica < 0 || replica >= len(g.replicas) {
		return fmt.Errorf("kvstore: shard group %s has no replica %d", g.name, replica)
	}
	if !g.down[replica] {
		return nil
	}
	slots := make([]int, 0, NumShardSlots)
	for s := range g.owned {
		if g.owned[s] {
			slots = append(slots, s)
		}
	}
	payload, err := g.buildSyncLocked(ctx, g.version, slots)
	if err != nil {
		return err
	}
	dec, err := DecodeStateSync(EncodeStateSync(payload))
	if err != nil {
		return fmt.Errorf("kvstore: shard group %s rejoin codec: %w", g.name, err)
	}
	r := g.replicas[replica]
	for _, k := range sortedKeys(g.missed[replica]) {
		if _, err := r.Delete(ctx, k); err != nil {
			return fmt.Errorf("kvstore: shard group %s rejoin delete %q: %w", g.name, k, err)
		}
	}
	for _, e := range dec.Entries {
		if err := r.Set(ctx, e.Key, e.Val); err != nil {
			return fmt.Errorf("kvstore: shard group %s rejoin write %q: %w", g.name, e.Key, err)
		}
	}
	g.missed[replica] = nil
	g.down[replica] = false
	return nil
}

// sortedKeys returns a map's keys in sorted order, the determinism
// backbone of every bulk path (transfer, drop, rejoin).
func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
