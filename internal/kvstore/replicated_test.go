package kvstore

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// errStore fails every operation with a fixed error — a dead replica.
type errStore struct{ err error }

func (e errStore) Get(context.Context, string) ([]byte, bool, error) { return nil, false, e.err }
func (e errStore) Set(context.Context, string, []byte) error         { return e.err }
func (e errStore) Delete(context.Context, string) (bool, error)      { return false, e.err }
func (e errStore) MGet(context.Context, []string) ([][]byte, error)  { return nil, e.err }
func (e errStore) Update(context.Context, string, func([]byte, bool) ([]byte, bool)) error {
	return e.err
}
func (e errStore) Len(context.Context) (int, error) { return 0, e.err }

func TestReplicatedValidation(t *testing.T) {
	if _, err := NewReplicated(); err == nil {
		t.Error("NewReplicated() with no backends succeeded")
	}
	if _, err := NewReplicated(NewLocal(1), nil); err == nil {
		t.Error("NewReplicated with a nil backend succeeded")
	}
	r, err := NewReplicated(NewLocal(1))
	if err != nil || r.Backends() != 1 {
		t.Errorf("single-backend replicated = %v backends, err %v", r.Backends(), err)
	}
}

func TestReplicatedWriteAllFansOut(t *testing.T) {
	ctx := context.Background()
	a, b := NewLocal(4), NewLocal(4)
	r, err := NewReplicated(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Both backends hold the value independently.
	for i, s := range []Store{a, b} {
		v, ok, err := s.Get(ctx, "k")
		if err != nil || !ok || string(v) != "v" {
			t.Errorf("backend %d: Get = %q,%v,%v", i, v, ok, err)
		}
	}
	if ok, err := r.Delete(ctx, "k"); err != nil || !ok {
		t.Fatalf("Delete = %v,%v, want true", ok, err)
	}
	for i, s := range []Store{a, b} {
		if _, ok, _ := s.Get(ctx, "k"); ok {
			t.Errorf("backend %d still holds the key after replicated delete", i)
		}
	}
}

func TestReplicatedReadPrefersPrimary(t *testing.T) {
	ctx := context.Background()
	a, b := NewLocal(4), NewLocal(4)
	r, _ := NewReplicated(a, b)
	// Divergent state (as after a replica rebuild): reads must come from
	// the primary, not whichever replica happens to answer.
	_ = a.Set(ctx, "k", []byte("primary"))
	_ = b.Set(ctx, "k", []byte("stale"))
	v, ok, err := r.Get(ctx, "k")
	if err != nil || !ok || string(v) != "primary" {
		t.Fatalf("Get = %q,%v,%v, want primary's value", v, ok, err)
	}
	if s := r.Stats(); s.ReadFallbacks != 0 {
		t.Errorf("ReadFallbacks = %d, want 0", s.ReadFallbacks)
	}
}

func TestReplicatedMissingKeyIsNotAnError(t *testing.T) {
	ctx := context.Background()
	a, b := NewLocal(4), NewLocal(4)
	r, _ := NewReplicated(a, b)
	// A key present only on the secondary: the healthy primary's "missing"
	// is the answer — replicas must never shadow the primary's state.
	_ = b.Set(ctx, "ghost", []byte("x"))
	if _, ok, err := r.Get(ctx, "ghost"); err != nil || ok {
		t.Errorf("Get(ghost) = ok=%v err=%v, want miss from primary", ok, err)
	}
	if s := r.Stats(); s.ReadFallbacks != 0 {
		t.Errorf("ReadFallbacks = %d, want 0 (miss is a successful read)", s.ReadFallbacks)
	}
}

func TestReplicatedReadFallsOverToHealthyReplica(t *testing.T) {
	ctx := context.Background()
	healthy := NewLocal(4)
	_ = healthy.Set(ctx, "k", []byte("v"))
	r, _ := NewReplicated(errStore{err: ErrInjected}, healthy)

	v, ok, err := r.Get(ctx, "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v,%v, want secondary's value", v, ok, err)
	}
	vals, err := r.MGet(ctx, []string{"k"})
	if err != nil || string(vals[0]) != "v" {
		t.Fatalf("MGet = %q,%v", vals, err)
	}
	if n, err := r.Len(ctx); err != nil || n != 1 {
		t.Fatalf("Len = %d,%v, want 1", n, err)
	}
	if s := r.Stats(); s.ReadFallbacks != 3 {
		t.Errorf("ReadFallbacks = %d, want 3", s.ReadFallbacks)
	}
}

func TestReplicatedReadAllDeadJoinsErrors(t *testing.T) {
	sentinel := errors.New("replica B down")
	r, _ := NewReplicated(errStore{err: ErrInjected}, errStore{err: sentinel})
	_, _, err := r.Get(context.Background(), "k")
	if err == nil {
		t.Fatal("Get with all replicas dead succeeded")
	}
	// The joined error keeps every root cause reachable and labels replicas.
	if !errors.Is(err, ErrInjected) || !errors.Is(err, sentinel) {
		t.Errorf("joined error loses causes: %v", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "replica 0") || !strings.Contains(msg, "replica 1") {
		t.Errorf("joined error lacks replica labels: %q", msg)
	}
}

func TestReplicatedWriteSurvivesDeadReplica(t *testing.T) {
	ctx := context.Background()
	healthy := NewLocal(4)
	r, _ := NewReplicated(errStore{err: ErrInjected}, healthy)

	if err := r.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Set with one dead replica = %v, want success", err)
	}
	if v, ok, _ := healthy.Get(ctx, "k"); !ok || string(v) != "v" {
		t.Error("healthy replica missed the write")
	}
	if _, err := r.Delete(ctx, "k"); err != nil {
		t.Fatalf("Delete with one dead replica = %v, want success", err)
	}
	if s := r.Stats(); s.WriteSkips != 2 {
		t.Errorf("WriteSkips = %d, want 2 (one per write op)", s.WriteSkips)
	}
}

func TestReplicatedWriteAllDeadFails(t *testing.T) {
	r, _ := NewReplicated(errStore{err: ErrInjected}, errStore{err: ErrInjected})
	if err := r.Set(context.Background(), "k", nil); !errors.Is(err, ErrInjected) {
		t.Errorf("Set with all replicas dead = %v, want ErrInjected", err)
	}
	if s := r.Stats(); s.WriteSkips != 0 {
		t.Errorf("WriteSkips = %d, want 0 (total failure is an error, not a skip)", s.WriteSkips)
	}
}

func TestReplicatedDeleteReportsExistence(t *testing.T) {
	ctx := context.Background()
	a, b := NewLocal(4), NewLocal(4)
	r, _ := NewReplicated(a, b)
	_ = r.Set(ctx, "k", []byte("v"))
	if ok, err := r.Delete(ctx, "k"); err != nil || !ok {
		t.Errorf("Delete(existing) = %v,%v, want true", ok, err)
	}
	if ok, err := r.Delete(ctx, "k"); err != nil || ok {
		t.Errorf("Delete(absent) = %v,%v, want false", ok, err)
	}
}

func TestReplicatedUpdateAppliesOnceWritesAll(t *testing.T) {
	ctx := context.Background()
	a, b := NewLocal(4), NewLocal(4)
	r, _ := NewReplicated(a, b)
	_ = r.Set(ctx, "n", EncodeInt64(1))

	invocations := 0
	err := r.Update(ctx, "n", func(cur []byte, exists bool) ([]byte, bool) {
		invocations++
		n, _ := DecodeInt64(cur)
		return EncodeInt64(n + 10), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if invocations != 1 {
		t.Errorf("Update callback ran %d times, want 1", invocations)
	}
	for i, s := range []Store{a, b} {
		v, _, _ := s.Get(ctx, "n")
		if n, _ := DecodeInt64(v); n != 11 {
			t.Errorf("backend %d after Update = %d, want 11", i, n)
		}
	}

	// Update with keep=false deletes everywhere.
	if err := r.Update(ctx, "n", func([]byte, bool) ([]byte, bool) { return nil, false }); err != nil {
		t.Fatal(err)
	}
	for i, s := range []Store{a, b} {
		if _, ok, _ := s.Get(ctx, "n"); ok {
			t.Errorf("backend %d still holds key after Update-delete", i)
		}
	}
}

// TestReplicatedResilientComposition exercises the production stack shape:
// Replicated over per-backend Resilient decorators. A backend whose breaker is
// open fails fast, and reads skip over it to the healthy replica.
func TestReplicatedResilientComposition(t *testing.T) {
	ctx := context.Background()
	flaky := newFlakyStore()
	primary := NewResilient(flaky, ResilienceConfig{
		MaxRetries: 0,
		Breaker:    BreakerConfig{Threshold: 1, Cooldown: DefaultBreakerCooldown},
	}, 1)
	primary.SetClock(newFakeClock().Now) // frozen clock: breaker stays open
	primary.SetSleep(noSleep)
	secondary := NewResilient(NewLocal(4), ResilienceConfig{MaxRetries: 0}, 2)
	secondary.SetSleep(noSleep)
	r, err := NewReplicated(primary, secondary)
	if err != nil {
		t.Fatal(err)
	}

	if err := r.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	flaky.setFailNext(100)
	// First read trips the primary's breaker and falls over; subsequent
	// reads are rejected at memory speed without touching the flaky store.
	for i := 0; i < 3; i++ {
		v, ok, err := r.Get(ctx, "k")
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("read %d = %q,%v,%v", i, v, ok, err)
		}
	}
	if got := primary.Breaker().State(); got != BreakerOpen {
		t.Errorf("primary breaker = %v, want open", got)
	}
	if calls := flaky.callCount(); calls != 2 {
		// 1 successful Set + 1 failed Get; reads 2 and 3 hit ErrBreakerOpen.
		t.Errorf("flaky store saw %d calls, want 2", calls)
	}
	if s := r.Stats(); s.ReadFallbacks != 3 {
		t.Errorf("ReadFallbacks = %d, want 3", s.ReadFallbacks)
	}
}
