package kvstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"vidrec/internal/topn"
)

// Binary encodings for the value types the pipeline stores. All encodings are
// little-endian and length-prefixed where needed, designed to be compact and
// allocation-predictable rather than self-describing: every namespace stores
// exactly one value type, so the reader always knows the format.

// EncodeFloats encodes a float64 slice as 8 bytes per element.
func EncodeFloats(v []float64) []byte {
	return AppendFloats(make([]byte, 0, 8*len(v)), v) // alloccheck: one record per write, sized by the caller's payload (bandit state: 6 floats)
}

// AppendFloats appends the EncodeFloats encoding of v to dst and returns the
// extended slice — the buffer-reuse form for writers that batch encodes into
// one scratch buffer.
func AppendFloats(dst []byte, v []float64) []byte {
	for _, f := range v {
		var sb [8]byte
		binary.LittleEndian.PutUint64(sb[:], math.Float64bits(f))
		dst = append(dst, sb[:]...)
	}
	return dst
}

// DecodeFloats decodes a value produced by EncodeFloats.
func DecodeFloats(b []byte) ([]float64, error) {
	return DecodeFloatsInto(nil, b)
}

// DecodeFloatsInto decodes like DecodeFloats but reuses dst's backing array
// when it has the capacity, allocating only when it must grow. The serving
// hot path decodes hundreds of candidate vectors per request into one
// scratch slice instead of hundreds of fresh allocations; the returned slice
// aliases dst, so callers must consume it before the next reuse.
//
// hotpath: the decode-into discipline only matters if it stays allocation-free
func DecodeFloatsInto(dst []float64, b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("kvstore: float slice encoding has %d bytes, not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if cap(dst) < n {
		dst = make([]float64, n) // alloccheck: grow on first use; steady state reuses dst
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst, nil
}

// EncodeFloat encodes a single float64.
func EncodeFloat(f float64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(f))
	return buf
}

// DecodeFloat decodes a value produced by EncodeFloat.
//
// hotpath: one bias decode per cold key; reached through the Store interface
func DecodeFloat(b []byte) (float64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("kvstore: float encoding has %d bytes, want 8", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// EncodeEntries encodes a scored list (similar-video tables, hot lists):
// a uvarint count, then per entry a uvarint-length-prefixed ID and an 8-byte
// score.
func EncodeEntries(entries []topn.Entry) []byte {
	size := binary.MaxVarintLen64
	for _, e := range entries {
		size += binary.MaxVarintLen64 + len(e.ID) + 8
	}
	buf := make([]byte, 0, size) // alloccheck: one record per write, sized by the caller's payload (attributions: one slate)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.ID)))
		buf = append(buf, e.ID...)
		var sb [8]byte
		binary.LittleEndian.PutUint64(sb[:], math.Float64bits(e.Score))
		buf = append(buf, sb[:]...)
	}
	return buf
}

// DecodeEntries decodes a value produced by EncodeEntries.
func DecodeEntries(b []byte) ([]topn.Entry, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("kvstore: corrupt entry list header")
	}
	if n > uint64(len(b)) { // each entry needs at least 1 byte; cheap sanity bound
		return nil, fmt.Errorf("kvstore: entry list claims %d entries in %d bytes", n, len(b))
	}
	// alloccheck: miss-path decode, sized by the encoded header
	entries := make([]topn.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(b[off:])
		if m <= 0 {
			return nil, fmt.Errorf("kvstore: corrupt entry %d length", i)
		}
		off += m
		if uint64(len(b)-off) < l+8 {
			return nil, fmt.Errorf("kvstore: truncated entry %d", i)
		}
		id := string(b[off : off+int(l)]) // alloccheck: decoded IDs must not alias the store's buffer
		off += int(l)
		score := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		entries = append(entries, topn.Entry{ID: id, Score: score})
	}
	return entries, nil
}

// EncodeStrings encodes a string slice (user histories as plain ID lists):
// uvarint count, then uvarint-length-prefixed strings.
func EncodeStrings(ss []string) []byte {
	size := binary.MaxVarintLen64
	for _, s := range ss {
		size += binary.MaxVarintLen64 + len(s)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// DecodeStrings decodes a value produced by EncodeStrings.
func DecodeStrings(b []byte) ([]string, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("kvstore: corrupt string list header")
	}
	if n > uint64(len(b)) {
		return nil, fmt.Errorf("kvstore: string list claims %d entries in %d bytes", n, len(b))
	}
	// alloccheck: miss-path decode, sized by the encoded header
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(b[off:])
		if m <= 0 {
			return nil, fmt.Errorf("kvstore: corrupt string %d length", i)
		}
		off += m
		if uint64(len(b)-off) < l {
			return nil, fmt.Errorf("kvstore: truncated string %d", i)
		}
		out = append(out, string(b[off:off+int(l)])) // alloccheck: decoded strings must not alias the store's buffer
		off += int(l)
	}
	return out, nil
}

// q8HeaderLen is the fixed prefix of a quantized-vector record: the
// quantization scale and the item bias, 8 little-endian bytes each.
const q8HeaderLen = 16

// EncodeQ8Vec encodes one item's quantized serving record: the per-vector
// quantization scale, the item's bias term, and the int8 components. Packing
// scale + bias + vector into one record is deliberate — the quantized scoring
// path fetches exactly one key per cold item instead of the float path's
// vector + bias pair.
func EncodeQ8Vec(scale, bias float64, data []int8) []byte {
	buf := make([]byte, q8HeaderLen+len(data)) // alloccheck: one record per item publish, sized by the payload
	binary.LittleEndian.PutUint64(buf, math.Float64bits(scale))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(bias))
	for i, q := range data {
		buf[q8HeaderLen+i] = byte(q)
	}
	return buf
}

// DecodeQ8Vec decodes a value produced by EncodeQ8Vec into a fresh payload
// slice. Miss-path convenience form of DecodeQ8VecInto.
func DecodeQ8Vec(b []byte) (scale, bias float64, data []int8, err error) {
	return DecodeQ8VecInto(nil, b)
}

// DecodeQ8VecInto decodes like DecodeQ8Vec but reuses dst's backing array
// when it has the capacity, so a warm decode is allocation-free. The payload
// is copied out of b on purpose: decoded records are retained by the
// quantized parameter table and must never alias the store's buffer. A
// non-finite or negative scale is rejected — it would poison every score the
// record touches, and Quantize never emits one.
//
// hotpath: quantized records decode into pooled buffers on the serving path
func DecodeQ8VecInto(dst []int8, b []byte) (scale, bias float64, data []int8, err error) {
	if len(b) < q8HeaderLen {
		return 0, 0, nil, fmt.Errorf("kvstore: q8 record has %d bytes, want at least %d", len(b), q8HeaderLen)
	}
	scale = math.Float64frombits(binary.LittleEndian.Uint64(b))
	bias = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
		return 0, 0, nil, fmt.Errorf("kvstore: q8 record has invalid scale %v", scale)
	}
	if math.IsNaN(bias) || math.IsInf(bias, 0) {
		return 0, 0, nil, fmt.Errorf("kvstore: q8 record has non-finite bias %v", bias)
	}
	payload := b[q8HeaderLen:]
	if cap(dst) < len(payload) {
		dst = make([]int8, len(payload)) // alloccheck: grow on first use; steady state reuses dst
	} else {
		dst = dst[:len(payload)]
	}
	for i, c := range payload {
		dst[i] = int8(c)
	}
	return scale, bias, dst, nil
}

// EncodeInt64 encodes a signed 64-bit integer (timestamps, counters).
func EncodeInt64(v int64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	return buf
}

// DecodeInt64 decodes a value produced by EncodeInt64.
func DecodeInt64(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("kvstore: int64 encoding has %d bytes, want 8", len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}
