package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vidrec/internal/metrics"
)

// Coordinator owns the authoritative shard map for a cluster of shard
// groups and runs the online rebalance protocol. The published map is
// immutable; moving a slot builds a Version+1 revision and installs it on
// every group inside one critical section, so there is exactly one map
// transition in flight at any moment and a client refresh — which takes
// the same mutex — always returns a fully installed map.
type Coordinator struct {
	mu     sync.Mutex
	m      *ShardMap     // guarded by mu; immutable once published
	groups []*ShardGroup // fixed at construction, index-aligned with m.Groups

	rebalances metrics.Counter // completed slot moves
	movedKeys  metrics.Counter // keys moved across all rebalances
}

// NewCoordinator builds the version-1 rendezvous map over the groups and
// installs each group's initial ownership.
func NewCoordinator(groups ...*ShardGroup) (*Coordinator, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("kvstore: coordinator needs at least one shard group")
	}
	names := make([]string, len(groups))
	for i, g := range groups {
		if g == nil {
			return nil, fmt.Errorf("kvstore: coordinator group %d is nil", i)
		}
		names[i] = g.Name()
	}
	m, err := NewShardMap(names)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{m: m, groups: append([]*ShardGroup(nil), groups...)}
	c.installLocked(m)
	return c, nil
}

// installLocked pushes a map revision's ownership sets to every group.
func (c *Coordinator) installLocked(m *ShardMap) {
	for i, g := range c.groups {
		var owned [NumShardSlots]bool
		for s, o := range m.Slots {
			if int(o) == i {
				owned[s] = true
			}
		}
		g.install(m.Version, &owned)
	}
}

// View returns the current map and the group handles. Because Rebalance
// holds the same mutex end to end, a View issued mid-rebalance blocks until
// the handoff completes — the property that turns a client's redirect
// retry into a parked wait instead of a spin.
func (c *Coordinator) View() (*ShardMap, []*ShardGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m, c.groups
}

// Rebalance moves one slot to the named group with the freeze→transfer→flip
// handoff: writes to the slot freeze (reads keep serving from the source),
// the slot's keys and the dedup table stream to the destination through the
// StateSync wire codec, then the Version+1 map installs on every group and
// the source drops the moved data. Returns the number of keys moved.
func (c *Coordinator) Rebalance(ctx context.Context, slot int, toGroup string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if slot < 0 || slot >= NumShardSlots {
		return 0, fmt.Errorf("kvstore: rebalance slot %d out of range", slot)
	}
	dst := -1
	for i, name := range c.m.Groups {
		if name == toGroup {
			dst = i
			break
		}
	}
	if dst < 0 {
		return 0, fmt.Errorf("kvstore: rebalance target group %q unknown", toGroup)
	}
	src := c.m.GroupFor(slot)
	if src == dst {
		return 0, nil
	}
	srcG, dstG := c.groups[src], c.groups[dst]
	next := c.m.Clone()
	next.Version++
	next.Slots[slot] = uint8(dst)

	// Freeze: writes to the slot now return ErrSlotFrozen and the writer's
	// refresh parks on c.mu; reads keep answering from the source.
	srcG.freeze(slot)
	payload, err := srcG.buildTransfer(ctx, next.Version, slot)
	if err != nil {
		srcG.unfreeze(slot)
		return 0, err
	}
	// Transfer through the wire codec — the same bytes a cross-process
	// coordinator would ship, so the fuzz-hardened decoder is the live path.
	dec, err := DecodeStateSync(EncodeStateSync(payload))
	if err != nil {
		srcG.unfreeze(slot)
		return 0, fmt.Errorf("kvstore: rebalance codec: %w", err)
	}
	if err := dstG.applyTransfer(ctx, dec); err != nil {
		srcG.unfreeze(slot)
		return 0, err
	}
	// Flip: every group learns the new ownership atomically with respect to
	// clients, because refreshes serialize behind this critical section.
	c.installLocked(next)
	c.m = next
	moved, err := srcG.dropSlot(ctx, slot)
	if err != nil {
		return moved, err
	}
	c.rebalances.Inc()
	c.movedKeys.Add(uint64(moved))
	return moved, nil
}

// CoordinatorStats is a point-in-time snapshot of the rebalance counters.
type CoordinatorStats struct {
	Version    uint64 // current shard-map version
	Groups     int
	Rebalances uint64 // completed slot moves
	MovedKeys  uint64 // keys moved across all rebalances
}

// Stats returns the coordinator's counters.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CoordinatorStats{
		Version:    c.m.Version,
		Groups:     len(c.groups),
		Rebalances: c.rebalances.Load(),
		MovedKeys:  c.movedKeys.Load(),
	}
}

// maxShardRetries bounds the router's redirect-and-refresh loop. Each
// retry follows a blocking refresh, so the bound is never reached in a
// healthy cluster; it exists to turn a routing bug into an error instead
// of a livelock.
const maxShardRetries = 64

// Sharded is the client-side router: a Store whose key space is
// partitioned across a Coordinator's shard groups. Every write is stamped
// with the router's client id and a fresh sequence number, the identity
// the groups' dedup tables key on. A routing miss (ErrWrongServer from a
// group that no longer owns the slot, or ErrSlotFrozen from a slot
// mid-handoff) refreshes the map from the coordinator — blocking out any
// in-flight rebalance — and retries, so stale-map clients recover without
// surfacing errors.
type Sharded struct {
	coord *Coordinator
	cid   uint64
	seq   atomic.Uint64

	mu     sync.RWMutex
	m      *ShardMap     // guarded by mu
	groups []*ShardGroup // guarded by mu; aligned with m.Groups

	redirects    metrics.Counter // retries after ErrWrongServer
	frozenWaits  metrics.Counter // retries after ErrSlotFrozen
	mapRefreshes metrics.Counter // coordinator refreshes
}

// NewSharded returns a router for the coordinator's cluster. cid is the
// client identity for write dedup and must be non-zero; distinct writers
// must use distinct cids.
func NewSharded(coord *Coordinator, cid uint64) (*Sharded, error) {
	if coord == nil {
		return nil, fmt.Errorf("kvstore: sharded router needs a coordinator")
	}
	if cid == 0 {
		return nil, fmt.Errorf("kvstore: sharded router client id must be non-zero")
	}
	m, groups := coord.View()
	return &Sharded{coord: coord, cid: cid, m: m, groups: groups}, nil
}

// MapVersion reports the shard-map version the router currently routes on.
func (s *Sharded) MapVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.Version
}

// ShardedStats is a point-in-time snapshot of the router's counters.
type ShardedStats struct {
	Redirects    uint64 // retries after ErrWrongServer
	FrozenWaits  uint64 // retries after ErrSlotFrozen
	MapRefreshes uint64 // coordinator refreshes
}

// Stats returns the router's counters.
func (s *Sharded) Stats() ShardedStats {
	return ShardedStats{
		Redirects:    s.redirects.Load(),
		FrozenWaits:  s.frozenWaits.Load(),
		MapRefreshes: s.mapRefreshes.Load(),
	}
}

// refresh pulls the coordinator's current map. Taking the coordinator
// mutex means a refresh issued while a rebalance is in flight parks until
// the handoff completes, which is why the retry loops never spin.
func (s *Sharded) refresh() {
	m, groups := s.coord.View()
	s.mapRefreshes.Inc()
	s.mu.Lock()
	if m.Version > s.m.Version {
		s.m, s.groups = m, groups
	}
	s.mu.Unlock()
}

// groupFor resolves a slot's owner under the router's current map.
func (s *Sharded) groupFor(slot int) *ShardGroup {
	s.mu.RLock()
	g := s.groups[s.m.GroupFor(slot)]
	s.mu.RUnlock()
	return g
}

// readSlot runs a read-only op against the slot's owner, refreshing and
// retrying on a stale route.
func (s *Sharded) readSlot(ctx context.Context, slot int, op func(Store) error) error {
	for attempt := 0; ; attempt++ {
		err := s.groupFor(slot).read(ctx, slot, op)
		if err == nil || !errors.Is(err, ErrWrongServer) {
			return err
		}
		if attempt >= maxShardRetries {
			return fmt.Errorf("kvstore: sharded read of slot %d unroutable after %d redirects: %w", slot, attempt, err)
		}
		s.redirects.Inc()
		s.refresh()
	}
}

// write stamps and routes one mutation, refreshing and retrying on a stale
// route or a frozen slot.
func (s *Sharded) write(ctx context.Context, key string, w groupWrite) (bool, error) {
	slot := SlotForKey(key)
	seq := s.seq.Add(1)
	for attempt := 0; ; attempt++ {
		existed, err := s.groupFor(slot).apply(ctx, slot, s.cid, seq, w)
		switch {
		case err == nil:
			return existed, nil
		case errors.Is(err, ErrWrongServer):
			s.redirects.Inc()
		case errors.Is(err, ErrSlotFrozen):
			s.frozenWaits.Inc()
		default:
			return false, err
		}
		if attempt >= maxShardRetries {
			return false, fmt.Errorf("kvstore: sharded write to %q unroutable after %d redirects: %w", key, attempt, err)
		}
		s.refresh()
	}
}

// Get implements Store.
func (s *Sharded) Get(ctx context.Context, key string) ([]byte, bool, error) {
	var v []byte
	var ok bool
	err := s.readSlot(ctx, SlotForKey(key), func(st Store) error {
		var err error
		v, ok, err = st.Get(ctx, key)
		return err
	})
	if err != nil {
		return nil, false, err
	}
	return v, ok, nil
}

// Set implements Store.
func (s *Sharded) Set(ctx context.Context, key string, val []byte) error {
	_, err := s.write(ctx, key, groupWrite{kind: writeSet, key: key, val: val})
	return err
}

// Delete implements Store.
func (s *Sharded) Delete(ctx context.Context, key string) (bool, error) {
	return s.write(ctx, key, groupWrite{kind: writeDelete, key: key})
}

// Update implements Store. The callback runs exactly once, on the owning
// group's primary; backups receive the captured result.
func (s *Sharded) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	_, err := s.write(ctx, key, groupWrite{kind: writeUpdate, key: key, fn: fn})
	return err
}

// MGet implements Store. The batch partitions by owner group; each group
// answers its sub-batch from one replica, and any stale route restarts the
// whole batch against the refreshed map so the scatter never splits across
// two map versions.
func (s *Sharded) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for attempt := 0; attempt <= maxShardRetries; attempt++ {
		s.mu.RLock()
		m, groups := s.m, s.groups
		s.mu.RUnlock()
		positions := make([][]int, len(groups))
		slots := make([][]int, len(groups))
		for i, k := range keys {
			slot := SlotForKey(k)
			gi := m.GroupFor(slot)
			positions[gi] = append(positions[gi], i)
			slots[gi] = append(slots[gi], slot)
		}
		stale := false
		for gi := range groups {
			if len(positions[gi]) == 0 {
				continue
			}
			sub := make([]string, len(positions[gi]))
			for j, i := range positions[gi] {
				sub[j] = keys[i]
			}
			var vals [][]byte
			err := groups[gi].readMulti(ctx, slots[gi], func(st Store) error {
				var err error
				vals, err = st.MGet(ctx, sub)
				return err
			})
			if errors.Is(err, ErrWrongServer) {
				s.redirects.Inc()
				s.refresh()
				stale = true
				break
			}
			if err != nil {
				return nil, err
			}
			for j, i := range positions[gi] {
				out[i] = vals[j]
			}
		}
		if !stale {
			return out, nil
		}
	}
	return nil, fmt.Errorf("kvstore: sharded mget unroutable after %d redirects", maxShardRetries)
}

// Len implements Store, summing every group's owned-slot key count. Slots
// mid-handoff count exactly once (see lenOwned).
func (s *Sharded) Len(ctx context.Context) (int, error) {
	s.mu.RLock()
	groups := s.groups
	s.mu.RUnlock()
	n := 0
	for _, g := range groups {
		c, err := g.lenOwned(ctx)
		if err != nil {
			return 0, err
		}
		n += c
	}
	return n, nil
}
