// Package kvstore provides the distributed memory-based key-value storage
// the paper's topology keeps all shared state in (§5.1): user and item
// latent vectors, biases, user behaviour histories, and per-video top-N
// similar lists.
//
// Two implementations share one interface:
//
//   - Local: a sharded in-memory store with per-shard locking, the
//     single-process stand-in for Tencent's in-house distributed store.
//   - Client/Server (net.go): the same store exposed over TCP with a gob
//     protocol, so the topology can run against a genuinely remote store.
//
// Values are raw bytes; codec.go provides the binary encodings used for
// vectors and scored lists. The paper's topology guarantees that only one
// worker writes a given key at a time (fields grouping by key), which is why
// the interface can offer a plain Set rather than compare-and-swap; Update is
// provided for single-writer read-modify-write convenience.
package kvstore

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Store is the key-value abstraction the recommendation pipeline runs on.
// Implementations must be safe for concurrent use.
//
// Every operation takes a context: the network-backed implementation turns
// its deadline into connection deadlines and its cancellation into an early
// return, so a slow storage tier cannot wedge the serving path. The in-memory
// implementation honours cancellation before touching a shard. Callers on the
// serving and topology paths must thread the request or run context through —
// the ctxcheck lint pass enforces that no new context roots appear outside
// cmd/.
type Store interface {
	// Get returns a copy of the value stored under key.
	Get(ctx context.Context, key string) ([]byte, bool, error)
	// Set stores a copy of val under key.
	Set(ctx context.Context, key string, val []byte) error
	// Delete removes key, reporting whether it existed.
	Delete(ctx context.Context, key string) (bool, error)
	// MGet returns values for all keys; missing keys yield nil entries.
	MGet(ctx context.Context, keys []string) ([][]byte, error)
	// Update atomically applies fn to the current value (nil, false if
	// absent). fn returns the new value, or ok=false to delete the key.
	// The atomicity guarantee is per-key and only holds within a Local
	// store; the network client implements Update as get-modify-set, which
	// is safe under the topology's single-writer-per-key discipline.
	Update(ctx context.Context, key string, fn func(cur []byte, exists bool) (next []byte, ok bool)) error
	// Len reports the number of stored keys.
	Len(ctx context.Context) (int, error)
}

// Stats are cumulative operation counters, updated atomically.
type Stats struct {
	Gets    atomic.Uint64
	Hits    atomic.Uint64
	Sets    atomic.Uint64
	Deletes atomic.Uint64
	Updates atomic.Uint64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Gets:    s.Gets.Load(),
		Hits:    s.Hits.Load(),
		Sets:    s.Sets.Load(),
		Deletes: s.Deletes.Load(),
		Updates: s.Updates.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Gets, Hits, Sets, Deletes, Updates uint64
}

// HitRate returns Hits/Gets, or 0 when no Get has been issued.
func (s StatsSnapshot) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Local is a sharded in-memory Store. Keys are partitioned across shards by
// FNV-1a hash; each shard has its own RWMutex, so operations on different
// shards never contend. This mirrors how a distributed store partitions keys
// across nodes, collapsed into one process.
type Local struct {
	shards []shard
	mask   uint32
	stats  Stats
}

type shard struct {
	mu sync.RWMutex
	m  map[string][]byte // guarded by mu
}

// NewLocal returns a Local store with the given shard count, rounded up to a
// power of two (minimum 1).
func NewLocal(shards int) *Local {
	n := 1
	for n < shards {
		n <<= 1
	}
	l := &Local{shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range l.shards {
		l.shards[i].m = make(map[string][]byte)
	}
	return l
}

// fnv1a32 is FNV-1a inlined over the key string. hash/fnv's New32a allocates
// its hash.Hash32 state on every call, which put one heap allocation on every
// store operation; the inlined form hashes from the string without copying it
// to a []byte either. Kept bit-identical to hash/fnv (pinned by a test) so
// shard assignment never silently shifts.
func fnv1a32(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

func (l *Local) shardFor(key string) *shard {
	return &l.shards[fnv1a32(key)&l.mask]
}

// Get implements Store.
func (l *Local) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	l.stats.Gets.Add(1)
	s := l.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[key]
	var cp []byte
	if ok {
		cp = make([]byte, len(v))
		copy(cp, v)
	}
	s.mu.RUnlock()
	if ok {
		l.stats.Hits.Add(1)
	}
	return cp, ok, nil
}

// Set implements Store.
func (l *Local) Set(ctx context.Context, key string, val []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.stats.Sets.Add(1)
	cp := make([]byte, len(val))
	copy(cp, val)
	s := l.shardFor(key)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Delete implements Store.
func (l *Local) Delete(ctx context.Context, key string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	l.stats.Deletes.Add(1)
	s := l.shardFor(key)
	s.mu.Lock()
	_, ok := s.m[key]
	delete(s.m, key)
	s.mu.Unlock()
	return ok, nil
}

// MGet implements Store.
func (l *Local) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		v, ok, err := l.Get(ctx, k) // fails only on context cancellation
		if err != nil {
			return nil, err
		}
		if ok {
			out[i] = v
		}
	}
	return out, nil
}

// Update implements Store. The callback runs under the shard's write lock,
// so concurrent updates of the same key serialize.
func (l *Local) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.stats.Updates.Add(1)
	s := l.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[key]
	var curCopy []byte
	if ok {
		curCopy = make([]byte, len(cur))
		copy(curCopy, cur)
	}
	next, keep := fn(curCopy, ok)
	if !keep {
		delete(s.m, key)
		return nil
	}
	cp := make([]byte, len(next))
	copy(cp, next)
	s.m[key] = cp
	return nil
}

// Len implements Store.
func (l *Local) Len(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n, nil
}

// Stats returns the store's cumulative operation counters.
func (l *Local) Stats() *Stats { return &l.stats }

// Shards returns the number of shards (always a power of two).
func (l *Local) Shards() int { return len(l.shards) }

// ForEach calls fn for every key/value pair, shard by shard, holding each
// shard's read lock only while iterating it. The value passed to fn is the
// live slice and must not be retained or modified. Used by batch baselines
// that scan state (e.g. AR mining over recorded histories).
func (l *Local) ForEach(fn func(key string, val []byte) bool) {
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Key builds a namespaced key. The topology stores several kinds of state in
// one store; namespaces keep them apart ("uv" user vector, "iv" item vector,
// "ub"/"ib" biases, "uh" user history, "sim" similar list, ...).
func Key(namespace, id string) string {
	return namespace + ":" + id // alloccheck: one small key header per lookup; hot callers memoize (core keyMemo)
}

// SplitKey splits a key produced by Key back into namespace and id.
func SplitKey(key string) (namespace, id string, err error) {
	for i := 0; i < len(key); i++ {
		if key[i] == ':' {
			return key[:i], key[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("kvstore: key %q has no namespace separator", key)
}
