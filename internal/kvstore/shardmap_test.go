package kvstore

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestSlotForKeyMatchesHash(t *testing.T) {
	keys := []string{"", "uv:u1", "iv:v42", "sim:v7", "uh:u9", strings.Repeat("k", 300)}
	for _, k := range keys {
		if got, want := SlotForKey(k), int(fnv1a32(k)%NumShardSlots); got != want {
			t.Errorf("SlotForKey(%q) = %d, want %d", k, got, want)
		}
		if s := SlotForKey(k); s < 0 || s >= NumShardSlots {
			t.Errorf("SlotForKey(%q) = %d out of range", k, s)
		}
	}
}

func TestNewShardMapValidates(t *testing.T) {
	if _, err := NewShardMap(nil); err == nil {
		t.Error("empty group list accepted")
	}
	if _, err := NewShardMap([]string{"g0", ""}); err == nil {
		t.Error("empty group name accepted")
	}
	if _, err := NewShardMap([]string{"g0", "g1", "g0"}); err == nil {
		t.Error("duplicate group name accepted")
	}
	names := make([]string, 257)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
	}
	if _, err := NewShardMap(names); err == nil {
		t.Error("257 groups accepted")
	}
}

func TestShardMapEveryGroupOwnsSlots(t *testing.T) {
	m, err := NewShardMap([]string{"g0", "g1", "g2", "g3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(m.Groups))
	for s := range m.Slots {
		counts[m.GroupFor(s)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("group %d owns no slots", i)
		}
	}
}

func TestShardMapCodecRoundTrip(t *testing.T) {
	m, err := NewShardMap([]string{"alpha", "beta", "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	m.Version = 42
	dec, err := DecodeShardMap(EncodeShardMap(m))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Version != m.Version || len(dec.Groups) != len(m.Groups) {
		t.Fatalf("round trip changed header: %+v", dec)
	}
	for i := range m.Groups {
		if dec.Groups[i] != m.Groups[i] {
			t.Fatalf("group %d changed: %q vs %q", i, m.Groups[i], dec.Groups[i])
		}
	}
	for s := range m.Slots {
		if dec.Slots[s] != m.Slots[s] {
			t.Fatalf("slot %d owner changed: %d vs %d", s, m.Slots[s], dec.Slots[s])
		}
	}
}

func TestDecodeShardMapRejectsCorrupt(t *testing.T) {
	m, err := NewShardMap([]string{"g0", "g1"})
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeShardMap(m)
	cases := map[string][]byte{
		"empty":            {},
		"truncated groups": enc[:4],
		"truncated slots":  enc[:len(enc)-10],
		"trailing bytes":   append(append([]byte(nil), enc...), 0x01),
		"huge count":       {0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}
	for name, b := range cases {
		if _, err := DecodeShardMap(b); err == nil {
			t.Errorf("%s: corrupt map accepted", name)
		}
	}
	// A structurally valid encoding of an invalid map (owner out of range)
	// must fail Validate on decode.
	bad := m.Clone()
	bad.Slots[7] = 9
	if _, err := DecodeShardMap(EncodeShardMap(bad)); err == nil {
		t.Error("out-of-range owner accepted")
	}
}

// TestShardMapStability is the consistent-hash property test: for any key
// set and any shard count 1..16, every key routes to exactly one group, and
// growing the cluster N→N+1 moves at most ~keys/(N+1) keys — all of them to
// the new group, none between surviving groups.
func TestShardMapStability(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 17))
	keys := make([]string, 2000)
	for i := range keys {
		keys[i] = fmt.Sprintf("ns%d:id%08x", rng.IntN(5), rng.Uint32())
	}
	names := make([]string, 17)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
	}
	owner := func(m *ShardMap, key string) string {
		return m.Groups[m.GroupFor(SlotForKey(key))]
	}
	for n := 1; n <= 16; n++ {
		cur, err := NewShardMap(names[:n])
		if err != nil {
			t.Fatal(err)
		}
		// Exactly-one-group: the owner is a total deterministic function.
		for _, k := range keys {
			a, b := owner(cur, k), owner(cur, k)
			if a != b {
				t.Fatalf("n=%d: key %q routed to %q then %q", n, k, a, b)
			}
		}
		if n == 16 {
			break
		}
		next, err := NewShardMap(names[:n+1])
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			if a, b := owner(cur, k), owner(next, k); a != b {
				moved++
				if b != names[n] {
					t.Fatalf("n=%d: key %q moved %q → %q, not to the new group", n, k, a, b)
				}
			}
		}
		// Expected movement is keys/(n+1); the slack term covers slot
		// granularity (moves happen 256ths of the key space at a time).
		bound := (len(keys)+n)/(n+1) + len(keys)/8
		if moved > bound {
			t.Errorf("n=%d→%d moved %d keys, bound %d", n, n+1, moved, bound)
		}
	}
}
