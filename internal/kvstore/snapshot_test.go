package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := NewLocal(8)
	for i := 0; i < 100; i++ {
		src.Set(context.Background(), fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("value-%d", i*i)))
	}
	src.Set(context.Background(), "empty-value", nil)
	src.Set(context.Background(), "", []byte("empty-key"))

	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewLocal(2)
	if err := dst.ReadSnapshot(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	srcN, _ := src.Len(context.Background())
	dstN, _ := dst.Len(context.Background())
	if srcN != dstN {
		t.Fatalf("lengths differ: %d vs %d", srcN, dstN)
	}
	src.ForEach(func(k string, v []byte) bool {
		got, ok, _ := dst.Get(context.Background(), k)
		if !ok || !bytes.Equal(got, v) {
			t.Errorf("key %q: got %q ok=%v, want %q", k, got, ok, v)
		}
		return true
	})
}

func TestSnapshotRoundTripQuick(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		src := NewLocal(4)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			src.Set(context.Background(), keys[i], vals[i])
		}
		var buf bytes.Buffer
		if err := src.WriteSnapshot(&buf); err != nil {
			return false
		}
		dst := NewLocal(1)
		if err := dst.ReadSnapshot(context.Background(), &buf); err != nil {
			return false
		}
		a, _ := src.Len(context.Background())
		b, _ := dst.Len(context.Background())
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	src := NewLocal(2)
	src.Set(context.Background(), "k", []byte("v"))
	var buf bytes.Buffer
	src.WriteSnapshot(&buf)
	data := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[0] ^= 0xFF
		if err := NewLocal(1).ReadSnapshot(context.Background(), bytes.NewReader(bad)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[len(bad)-6] ^= 0x01 // inside the payload, before the checksum
		if err := NewLocal(1).ReadSnapshot(context.Background(), bytes.NewReader(bad)); err == nil {
			t.Error("corrupt payload accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := NewLocal(1).ReadSnapshot(context.Background(), bytes.NewReader(data[:len(data)-3])); err == nil {
			t.Error("truncated snapshot accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if err := NewLocal(1).ReadSnapshot(context.Background(), bytes.NewReader(nil)); err == nil {
			t.Error("empty snapshot accepted")
		}
	})
}

func TestSaveLoadSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	src := NewLocal(4)
	src.Set(context.Background(), "a", EncodeFloats([]float64{1, 2, 3}))
	src.Set(context.Background(), "b", EncodeFloat(4.5))
	if err := src.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	dst := NewLocal(4)
	if err := dst.LoadSnapshot(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	raw, ok, _ := dst.Get(context.Background(), "a")
	if !ok {
		t.Fatal("key a missing after load")
	}
	vec, err := DecodeFloats(raw)
	if err != nil || len(vec) != 3 || vec[2] != 3 {
		t.Errorf("decoded %v, %v", vec, err)
	}
	if err := dst.LoadSnapshot(context.Background(), filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestSnapshotOverwritesExistingKeys(t *testing.T) {
	src := NewLocal(2)
	src.Set(context.Background(), "k", []byte("new"))
	var buf bytes.Buffer
	src.WriteSnapshot(&buf)

	dst := NewLocal(2)
	dst.Set(context.Background(), "k", []byte("old"))
	dst.Set(context.Background(), "other", []byte("kept"))
	if err := dst.ReadSnapshot(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	v, _, _ := dst.Get(context.Background(), "k")
	if string(v) != "new" {
		t.Errorf("k = %q, want overwritten", v)
	}
	if _, ok, _ := dst.Get(context.Background(), "other"); !ok {
		t.Error("unrelated key removed by snapshot load")
	}
}
