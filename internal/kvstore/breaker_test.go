package kvstore

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for breaker cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 0}, newFakeClock().Now)
	for i := 0; i < 10; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatal("disabled breaker rejected a call")
		}
	}
	if got := b.State(); got != BreakerClosed {
		t.Errorf("State = %v, want closed", got)
	}
	if s := b.Stats(); s.Trips != 0 || s.Rejections != 0 {
		t.Errorf("disabled breaker counted: %+v", s)
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond}, clk.Now)

	// Two failures: still closed, still allowing.
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("breaker left closed early: state=%v", b.State())
	}
	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("State after threshold = %v, want open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker allowed a call before cooldown")
	}
	s := b.Stats()
	if s.Trips != 1 || s.Rejections != 1 {
		t.Errorf("stats after trip = %+v, want 1 trip, 1 rejection", s)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond}, clk.Now)
	// The threshold counts *consecutive* failures: a success in between
	// restarts the count, so 2 fail + success + 2 fail stays closed.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("State = %v, want closed (success must reset the count)", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("State after third consecutive failure = %v, want open", b.State())
	}
}

func TestBreakerHalfOpenProbeSuccess(t *testing.T) {
	clk := newFakeClock()
	cooldown := 50 * time.Millisecond
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: cooldown}, clk.Now)

	b.Failure() // trip
	if b.State() != BreakerOpen {
		t.Fatalf("State = %v, want open", b.State())
	}
	// Just shy of the cooldown: still rejecting.
	clk.Advance(cooldown - time.Nanosecond)
	if b.Allow() {
		t.Fatal("breaker admitted a call before the cooldown elapsed")
	}
	// Cooldown elapsed: exactly one probe gets through.
	clk.Advance(time.Nanosecond)
	if !b.Allow() {
		t.Fatal("breaker rejected the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("State during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Error("breaker admitted a second call while the probe was in flight")
	}
	// Probe succeeds: breaker closes.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("State after probe success = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Error("closed breaker rejected a call")
	}
	if s := b.Stats(); s.Resets != 1 {
		t.Errorf("Resets = %d, want 1", s.Resets)
	}
}

func TestBreakerHalfOpenProbeFailure(t *testing.T) {
	clk := newFakeClock()
	cooldown := 50 * time.Millisecond
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: cooldown}, clk.Now)

	b.Failure() // trip
	clk.Advance(cooldown)
	if !b.Allow() {
		t.Fatal("breaker rejected the half-open probe")
	}
	// Probe fails: breaker re-opens and the cooldown re-arms from *now* —
	// an immediately following call must be rejected for a full new period.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("State after probe failure = %v, want open", b.State())
	}
	if b.Allow() {
		t.Error("breaker admitted a call right after a failed probe")
	}
	clk.Advance(cooldown - time.Nanosecond)
	if b.Allow() {
		t.Error("re-armed cooldown elapsed early")
	}
	clk.Advance(time.Nanosecond)
	if !b.Allow() {
		t.Fatal("breaker rejected the second probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("State after recovery = %v, want closed", b.State())
	}
	s := b.Stats()
	if s.Trips != 1 || s.Resets != 1 {
		t.Errorf("stats = %+v, want 1 trip (probe failure re-opens without re-counting a trip), 1 reset", s)
	}
}

func TestBreakerHalfOpenProbeReleaseOnFailureAllowsNext(t *testing.T) {
	// A failed probe must clear the probing flag; otherwise the breaker
	// would deadlock rejecting everything forever.
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond}, clk.Now)
	for round := 0; round < 3; round++ {
		b.Failure()
		clk.Advance(time.Millisecond)
		if !b.Allow() {
			t.Fatalf("round %d: probe rejected", round)
		}
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "BreakerState(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
