package kvstore

import "sync"

// Keys composes and caches namespace-qualified store keys. Key(ns, id) is a
// pure function, but the serving path composes the same keys on every
// request — each composition is a string concatenation (one allocation) the
// warm budget then pays again when the decoded-value cache hashes it. A Keys
// table bound to one namespace remembers each id's composed key, so steady-
// state reads reuse one immutable string per (namespace, id).
//
// The table grows with the distinct ids it sees and never evicts. That is
// the same monotonic, id-space-bounded growth as intern.Table — and each
// entry is an order of magnitude smaller than the stored value its key
// addresses, so the memo tracks the store's own growth rather than adding a
// new axis.
type Keys struct {
	ns string
	mu sync.RWMutex
	m  map[string]string // guarded by mu; id → composed key
}

// NewKeys returns a key composer bound to namespace.
func NewKeys(namespace string) *Keys {
	return &Keys{ns: namespace, m: make(map[string]string)} // alloccheck: once per component at wiring time, never per request
}

// Namespace returns the bound namespace.
func (k *Keys) Namespace() string { return k.ns }

// Key returns the composed key for id, remembering it on first sight. A
// plain RWMutex-guarded map beats sync.Map here: the read path is a single
// specialized string-map access instead of an interface-keyed trie walk, and
// writes stop after the id space has been seen once.
//
// hotpath: warm reads resolve every store key through here, allocation-free
func (k *Keys) Key(id string) string {
	k.mu.RLock()
	key, ok := k.m[id]
	k.mu.RUnlock()
	if ok {
		return key
	}
	key = Key(k.ns, id)
	k.mu.Lock()
	k.m[id] = key // alloccheck: first sight of an id; every later request hits the memo
	k.mu.Unlock()
	return key
}
