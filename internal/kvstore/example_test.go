package kvstore_test

import (
	"context"
	"fmt"

	"vidrec/internal/kvstore"
)

// The store holds raw bytes; the codec helpers encode the pipeline's value
// types. Update is an atomic per-key read-modify-write.
func ExampleLocal() {
	store := kvstore.NewLocal(16)
	key := kvstore.Key("uv", "alice")
	store.Set(context.Background(), key, kvstore.EncodeFloats([]float64{0.1, 0.2}))

	store.Update(context.Background(), key, func(cur []byte, exists bool) ([]byte, bool) {
		vec, _ := kvstore.DecodeFloats(cur)
		vec[0] += 1
		return kvstore.EncodeFloats(vec), true
	})

	raw, _, _ := store.Get(context.Background(), key)
	vec, _ := kvstore.DecodeFloats(raw)
	fmt.Println(vec)
	// Output: [1.1 0.2]
}

// The same interface runs over TCP for the distributed deployment.
func ExampleDialContext() {
	ctx := context.Background()
	server, _ := kvstore.NewServer(ctx, kvstore.NewLocal(8), "127.0.0.1:0")
	defer server.Close()

	client, _ := kvstore.DialContext(ctx, server.Addr())
	defer client.Close()

	client.Set(ctx, "greeting", []byte("hello over the wire"))
	v, ok, _ := client.Get(ctx, "greeting")
	fmt.Println(ok, string(v))
	// Output: true hello over the wire
}
