package kvstore_test

import (
	"fmt"

	"vidrec/internal/kvstore"
)

// The store holds raw bytes; the codec helpers encode the pipeline's value
// types. Update is an atomic per-key read-modify-write.
func ExampleLocal() {
	store := kvstore.NewLocal(16)
	key := kvstore.Key("uv", "alice")
	store.Set(key, kvstore.EncodeFloats([]float64{0.1, 0.2}))

	store.Update(key, func(cur []byte, exists bool) ([]byte, bool) {
		vec, _ := kvstore.DecodeFloats(cur)
		vec[0] += 1
		return kvstore.EncodeFloats(vec), true
	})

	raw, _, _ := store.Get(key)
	vec, _ := kvstore.DecodeFloats(raw)
	fmt.Println(vec)
	// Output: [1.1 0.2]
}

// The same interface runs over TCP for the distributed deployment.
func ExampleDial() {
	server, _ := kvstore.NewServer(kvstore.NewLocal(8), "127.0.0.1:0")
	defer server.Close()

	client, _ := kvstore.Dial(server.Addr())
	defer client.Close()

	client.Set("greeting", []byte("hello over the wire"))
	v, ok, _ := client.Get("greeting")
	fmt.Println(ok, string(v))
	// Output: true hello over the wire
}
