package kvstore

import (
	"encoding/binary"
	"fmt"
)

// Horizontal sharding: the key space is divided into NumShardSlots fixed
// slots by FNV-1a hash, and a ShardMap assigns every slot to exactly one
// shard group (a primary/backup replica pair, shardgroup.go). Routing on a
// fixed slot table rather than hashing group names directly means ownership
// can move one slot at a time — the unit of the online rebalance protocol
// (sharded.go) — while every key's slot stays eternally stable.
//
// The initial slot→group assignment uses rendezvous (highest-random-weight)
// hashing, so growing a cluster from N to N+1 groups reassigns only the
// slots the new group wins — the consistent-hash stability bound the
// property test pins: at most ⌈slots/(N+1)⌉ slots move.

// NumShardSlots is the fixed number of hash slots keys are partitioned
// into. 256 slots keeps the map one byte per slot on the wire while still
// giving a 16-group cluster 16 slots per group to balance with.
const NumShardSlots = 256

// SlotForKey returns the shard slot a key routes to. Every key maps to
// exactly one slot, forever: the slot table is fixed and the hash is the
// same inlined FNV-1a the Local store uses (pinned bit-identical to
// hash/fnv by a test).
func SlotForKey(key string) int {
	return int(fnv1a32(key) % NumShardSlots)
}

// ShardMap is the routing table: the cluster's group names and the owner
// group index for each slot. Maps are immutable once published — the
// coordinator installs a new map (Version+1) to move ownership, and a
// client holding an old version discovers it through ErrWrongServer.
type ShardMap struct {
	// Version orders map revisions; rebalances publish Version+1.
	Version uint64
	// Groups are the shard-group names, index-aligned with Slots values.
	Groups []string
	// Slots[s] is the index into Groups of slot s's owner.
	Slots []uint8
}

// NewShardMap builds the version-1 map for the given group names, assigning
// every slot to its rendezvous winner.
func NewShardMap(groups []string) (*ShardMap, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("kvstore: shard map needs at least one group")
	}
	if len(groups) > 256 {
		return nil, fmt.Errorf("kvstore: shard map supports at most 256 groups, got %d", len(groups))
	}
	seen := make(map[string]struct{}, len(groups))
	for _, g := range groups {
		if g == "" {
			return nil, fmt.Errorf("kvstore: shard group name must be non-empty")
		}
		if _, dup := seen[g]; dup {
			return nil, fmt.Errorf("kvstore: duplicate shard group name %q", g)
		}
		seen[g] = struct{}{}
	}
	m := &ShardMap{
		Version: 1,
		Groups:  append([]string(nil), groups...),
		Slots:   make([]uint8, NumShardSlots),
	}
	for s := range m.Slots {
		m.Slots[s] = uint8(rendezvousOwner(s, groups))
	}
	return m, nil
}

// rendezvousOwner returns the index of the group with the highest hash
// weight for the slot. Each (group, slot) pair hashes independently, so
// adding a group only moves the slots the newcomer wins — no other
// assignment changes.
func rendezvousOwner(slot int, groups []string) int {
	best := 0
	bestW := rendezvousWeight(groups[0], slot)
	for i := 1; i < len(groups); i++ {
		if w := rendezvousWeight(groups[i], slot); w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// rendezvousWeight is FNV-1a 64 over the group name and the slot index,
// finished with a splitmix64 avalanche. The avalanche matters: raw FNV of a
// one-byte slot suffix only stirs the low bits, leaving the weight ordering
// between groups nearly constant across slots — one group would win the
// whole table.
func rendezvousWeight(group string, slot int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(group); i++ {
		h = (h ^ uint64(group[i])) * 1099511628211
	}
	h = (h ^ uint64(slot)) * 1099511628211
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// GroupFor returns the owner group index for a slot.
func (m *ShardMap) GroupFor(slot int) int { return int(m.Slots[slot]) }

// Clone returns a deep copy, the starting point for publishing a revision.
func (m *ShardMap) Clone() *ShardMap {
	return &ShardMap{
		Version: m.Version,
		Groups:  append([]string(nil), m.Groups...),
		Slots:   append([]uint8(nil), m.Slots...),
	}
}

// Validate checks structural integrity: group names present and unique,
// exactly NumShardSlots slot entries, every owner index in range.
func (m *ShardMap) Validate() error {
	if len(m.Groups) == 0 {
		return fmt.Errorf("kvstore: shard map has no groups")
	}
	if len(m.Groups) > 256 {
		return fmt.Errorf("kvstore: shard map has %d groups, max 256", len(m.Groups))
	}
	seen := make(map[string]struct{}, len(m.Groups))
	for _, g := range m.Groups {
		if g == "" {
			return fmt.Errorf("kvstore: shard map has empty group name")
		}
		if _, dup := seen[g]; dup {
			return fmt.Errorf("kvstore: shard map has duplicate group %q", g)
		}
		seen[g] = struct{}{}
	}
	if len(m.Slots) != NumShardSlots {
		return fmt.Errorf("kvstore: shard map has %d slots, want %d", len(m.Slots), NumShardSlots)
	}
	for s, g := range m.Slots {
		if int(g) >= len(m.Groups) {
			return fmt.Errorf("kvstore: slot %d owned by group %d, only %d groups", s, g, len(m.Groups))
		}
	}
	return nil
}

// EncodeShardMap encodes a map for the wire: uvarint version, uvarint group
// count, uvarint-length-prefixed group names, then the raw slot bytes.
func EncodeShardMap(m *ShardMap) []byte {
	size := 2*binary.MaxVarintLen64 + NumShardSlots
	for _, g := range m.Groups {
		size += binary.MaxVarintLen64 + len(g)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, m.Version)
	buf = binary.AppendUvarint(buf, uint64(len(m.Groups)))
	for _, g := range m.Groups {
		buf = binary.AppendUvarint(buf, uint64(len(g)))
		buf = append(buf, g...)
	}
	buf = append(buf, m.Slots...)
	return buf
}

// DecodeShardMap decodes a value produced by EncodeShardMap, validating the
// result so a corrupt map can never be installed.
func DecodeShardMap(b []byte) (*ShardMap, error) {
	version, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("kvstore: corrupt shard map version")
	}
	n, m := binary.Uvarint(b[off:])
	if m <= 0 {
		return nil, fmt.Errorf("kvstore: corrupt shard map group count")
	}
	off += m
	if n > uint64(len(b)) { // each group needs at least 1 byte; cheap sanity bound
		return nil, fmt.Errorf("kvstore: shard map claims %d groups in %d bytes", n, len(b))
	}
	groups := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(b[off:])
		if m <= 0 {
			return nil, fmt.Errorf("kvstore: corrupt shard map group %d length", i)
		}
		off += m
		if uint64(len(b)-off) < l {
			return nil, fmt.Errorf("kvstore: truncated shard map group %d", i)
		}
		groups = append(groups, string(b[off:off+int(l)]))
		off += int(l)
	}
	if len(b)-off != NumShardSlots {
		return nil, fmt.Errorf("kvstore: shard map has %d slot bytes, want %d", len(b)-off, NumShardSlots)
	}
	sm := &ShardMap{
		Version: version,
		Groups:  groups,
		Slots:   append([]uint8(nil), b[off:]...),
	}
	if err := sm.Validate(); err != nil {
		return nil, err
	}
	return sm, nil
}
