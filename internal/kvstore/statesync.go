package kvstore

import (
	"encoding/binary"
	"fmt"
)

// StateSync is the bulk state-transfer payload of the sharded tier, used in
// two places (both grounded in the primary/backup protocol this package
// models): catching a rejoining backup up to its primary, and handing a
// slot's data from the source group to the destination group during a
// rebalance. The payload carries the map version it was built against, the
// slots it covers, every key/value in those slots, and the duplicate-
// detection table — moving the dedup entries with the data is what keeps
// exactly-once write semantics across a handoff: a client retrying a write
// against the new owner still deduplicates.
type StateSync struct {
	// MapVersion is the shard-map version this payload belongs to.
	MapVersion uint64
	// Slots lists the slots the payload covers.
	Slots []uint16
	// Entries are the key/value pairs, in sorted key order so payload bytes
	// are a deterministic function of state.
	Entries []SyncEntry
	// Dedup is the applied-write table to merge into the receiver.
	Dedup []DedupEntry
}

// SyncEntry is one key/value pair in a StateSync payload.
type SyncEntry struct {
	Key string
	Val []byte
}

// DedupEntry identifies one applied client write: the client id and the
// client-assigned sequence number.
type DedupEntry struct {
	CID uint64
	Seq uint64
}

// EncodeStateSync encodes a payload: uvarint map version, uvarint slot
// count + 2-byte little-endian slots, uvarint entry count + length-prefixed
// key/value pairs, uvarint dedup count + uvarint CID/Seq pairs.
func EncodeStateSync(s *StateSync) []byte {
	size := 4*binary.MaxVarintLen64 + 2*len(s.Slots)
	for _, e := range s.Entries {
		size += 2*binary.MaxVarintLen64 + len(e.Key) + len(e.Val)
	}
	size += 2 * binary.MaxVarintLen64 * len(s.Dedup)
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, s.MapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(s.Slots)))
	for _, slot := range s.Slots {
		var sb [2]byte
		binary.LittleEndian.PutUint16(sb[:], slot)
		buf = append(buf, sb[:]...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Entries)))
	for _, e := range s.Entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(e.Val)))
		buf = append(buf, e.Val...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Dedup)))
	for _, d := range s.Dedup {
		buf = binary.AppendUvarint(buf, d.CID)
		buf = binary.AppendUvarint(buf, d.Seq)
	}
	return buf
}

// DecodeStateSync decodes a value produced by EncodeStateSync.
func DecodeStateSync(b []byte) (*StateSync, error) {
	s := &StateSync{}
	version, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("kvstore: corrupt state sync version")
	}
	s.MapVersion = version
	ns, m := binary.Uvarint(b[off:])
	if m <= 0 {
		return nil, fmt.Errorf("kvstore: corrupt state sync slot count")
	}
	off += m
	if ns > NumShardSlots {
		return nil, fmt.Errorf("kvstore: state sync claims %d slots, max %d", ns, NumShardSlots)
	}
	if uint64(len(b)-off) < 2*ns {
		return nil, fmt.Errorf("kvstore: truncated state sync slot list")
	}
	s.Slots = make([]uint16, 0, ns)
	for i := uint64(0); i < ns; i++ {
		slot := binary.LittleEndian.Uint16(b[off:])
		if slot >= NumShardSlots {
			return nil, fmt.Errorf("kvstore: state sync slot %d out of range", slot)
		}
		s.Slots = append(s.Slots, slot)
		off += 2
	}
	ne, m := binary.Uvarint(b[off:])
	if m <= 0 {
		return nil, fmt.Errorf("kvstore: corrupt state sync entry count")
	}
	off += m
	if ne > uint64(len(b)) { // each entry needs at least 2 bytes; cheap sanity bound
		return nil, fmt.Errorf("kvstore: state sync claims %d entries in %d bytes", ne, len(b))
	}
	s.Entries = make([]SyncEntry, 0, ne)
	for i := uint64(0); i < ne; i++ {
		kl, m := binary.Uvarint(b[off:])
		if m <= 0 {
			return nil, fmt.Errorf("kvstore: corrupt state sync entry %d key length", i)
		}
		off += m
		if uint64(len(b)-off) < kl {
			return nil, fmt.Errorf("kvstore: truncated state sync entry %d key", i)
		}
		key := string(b[off : off+int(kl)])
		off += int(kl)
		vl, m := binary.Uvarint(b[off:])
		if m <= 0 {
			return nil, fmt.Errorf("kvstore: corrupt state sync entry %d value length", i)
		}
		off += m
		if uint64(len(b)-off) < vl {
			return nil, fmt.Errorf("kvstore: truncated state sync entry %d value", i)
		}
		val := append([]byte(nil), b[off:off+int(vl)]...)
		off += int(vl)
		s.Entries = append(s.Entries, SyncEntry{Key: key, Val: val})
	}
	nd, m := binary.Uvarint(b[off:])
	if m <= 0 {
		return nil, fmt.Errorf("kvstore: corrupt state sync dedup count")
	}
	off += m
	if nd > uint64(len(b)) { // each dedup pair needs at least 2 bytes; cheap sanity bound
		return nil, fmt.Errorf("kvstore: state sync claims %d dedup entries in %d bytes", nd, len(b))
	}
	s.Dedup = make([]DedupEntry, 0, nd)
	for i := uint64(0); i < nd; i++ {
		cid, m := binary.Uvarint(b[off:])
		if m <= 0 {
			return nil, fmt.Errorf("kvstore: corrupt state sync dedup %d cid", i)
		}
		off += m
		seq, m := binary.Uvarint(b[off:])
		if m <= 0 {
			return nil, fmt.Errorf("kvstore: corrupt state sync dedup %d seq", i)
		}
		off += m
		s.Dedup = append(s.Dedup, DedupEntry{CID: cid, Seq: seq})
	}
	if off != len(b) {
		return nil, fmt.Errorf("kvstore: state sync has %d trailing bytes", len(b)-off)
	}
	return s, nil
}
