package kvstore

import (
	"fmt"
	"sync"
	"time"

	"vidrec/internal/metrics"
)

// Breaker is a per-backend circuit breaker: closed (normal operation) until
// Threshold consecutive failures, then open (every call rejected instantly —
// a dead store shard must not cost each request a full retry budget of
// timeouts), then half-open after Cooldown (exactly one probe is let through;
// its outcome decides between closing and re-opening). The pattern is the
// standard production answer to fail-fast serving over replicated KV
// backends; what is unusual here is the injected clock: the breaker never
// reads wall time, so the simulation harness can drive open→half-open
// transitions from its virtual clock and replay runs byte-identically.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	clock    func() time.Time // guarded by mu
	state    BreakerState     // guarded by mu
	failures int              // guarded by mu; consecutive failures while closed
	openedAt time.Time        // guarded by mu; when the breaker last tripped
	probing  bool             // guarded by mu; a half-open probe is in flight

	trips      metrics.Counter // closed→open transitions
	resets     metrics.Counter // half-open→closed transitions
	rejections metrics.Counter // calls refused while open
}

// BreakerConfig configures a Breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip the breaker. <= 0
	// disables the breaker entirely (Allow always true).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. 0 selects DefaultBreakerCooldown.
	Cooldown time.Duration
}

// DefaultBreakerCooldown is the open period before the first probe.
const DefaultBreakerCooldown = 100 * time.Millisecond

// BreakerState enumerates the state machine.
type BreakerState int

const (
	// BreakerClosed: requests flow, consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome decides.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// ErrBreakerOpen is returned for operations rejected by an open breaker.
var ErrBreakerOpen = fmt.Errorf("kvstore: circuit breaker open")

// NewBreaker returns a closed breaker. clock supplies "now" for the cooldown
// timing; nil selects the wall clock (the simulation harness always injects
// its virtual clock instead).
func NewBreaker(cfg BreakerConfig, clock func() time.Time) *Breaker {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if clock == nil {
		// clockcheck: default wall clock; sim-covered callers inject via SetClock.
		clock = time.Now
	}
	return &Breaker{cfg: cfg, clock: clock}
}

// SetClock replaces the breaker's time source. A nil fn restores the wall
// clock.
func (b *Breaker) SetClock(fn func() time.Time) {
	if fn == nil {
		// clockcheck: restoring the default wall clock.
		fn = time.Now
	}
	b.mu.Lock()
	b.clock = fn
	b.mu.Unlock()
}

// Allow reports whether a call may proceed. While open it returns false until
// the cooldown elapses, at which point it admits exactly one probe (moving to
// half-open); further calls are rejected until that probe resolves through
// Success or Failure.
func (b *Breaker) Allow() bool {
	if b.cfg.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejections.Inc()
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.rejections.Inc()
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful call: in half-open it closes the breaker (the
// probe proved the backend healthy), in closed it clears the consecutive
// failure count.
func (b *Breaker) Success() {
	if b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		b.resets.Inc()
	case BreakerClosed:
		b.failures = 0
	}
}

// Failure records a failed call: in half-open the probe failed and the
// breaker re-opens for another cooldown; in closed it counts toward the trip
// threshold.
func (b *Breaker) Failure() {
	if b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.clock()
		b.probing = false
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = BreakerOpen
			b.openedAt = b.clock()
			b.failures = 0
			b.trips.Inc()
		}
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is a point-in-time counter snapshot.
type BreakerStats struct {
	State      BreakerState
	Trips      uint64 // closed→open transitions
	Resets     uint64 // half-open→closed transitions
	Rejections uint64 // calls refused without touching the backend
}

// Stats returns a snapshot of the breaker's counters and state.
func (b *Breaker) Stats() BreakerStats {
	return BreakerStats{
		State:      b.State(),
		Trips:      b.trips.Load(),
		Resets:     b.resets.Load(),
		Rejections: b.rejections.Load(),
	}
}
