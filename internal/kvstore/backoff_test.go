package kvstore

import (
	"testing"
	"time"
)

// TestBackoffExactSequences pins the full delay sequence for fixed seeds.
// The values are the contract: backoff is a pure function of (config, seed,
// call order), so a change to the window math or the RNG consumption shows
// up here as an exact mismatch, not a flaky statistical drift.
func TestBackoffExactSequences(t *testing.T) {
	cases := []struct {
		name string
		cfg  BackoffConfig
		seed uint64
		want []time.Duration // delay for attempts 0..len-1, in nanoseconds
	}{
		{
			name: "2ms-250ms-seed1",
			cfg:  BackoffConfig{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond},
			seed: 1,
			want: []time.Duration{
				1406486, 3471596, 6907657, 15248399, 18584988,
				48388534, 64252948, 181709940, 153545532, 127252435,
			},
		},
		{
			name: "2ms-250ms-seed42",
			cfg:  BackoffConfig{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond},
			seed: 42,
			want: []time.Duration{
				1491782, 3463893, 7156091, 10538044, 28464130,
				63981549, 101728589, 193229407, 182559922, 188982093,
			},
		},
		{
			name: "defaults-seed7",
			cfg:  BackoffConfig{}, // Base/Max filled from the package defaults
			seed: 7,
			want: []time.Duration{
				1808040, 3159826, 7465129, 8438234,
				29242826, 63233803, 112765279, 208797493,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBackoff(tc.cfg, tc.seed)
			for i, want := range tc.want {
				if got := b.Delay(i); got != want {
					t.Errorf("Delay(%d) = %d, want %d", i, got, want)
				}
			}
		})
	}
}

// TestBackoffWindowBounds verifies every delay lands in the documented
// half-window [window/2, window) and that the window saturates at Max.
func TestBackoffWindowBounds(t *testing.T) {
	cfg := BackoffConfig{Base: time.Millisecond, Max: 16 * time.Millisecond}
	b := NewBackoff(cfg, 99)
	for attempt := 0; attempt < 40; attempt++ {
		window := cfg.Base << attempt
		if window > cfg.Max || window <= 0 {
			window = cfg.Max
		}
		d := b.Delay(attempt)
		if d < window/2 || d >= window {
			t.Errorf("Delay(%d) = %v outside [%v, %v)", attempt, d, window/2, window)
		}
	}
	// A huge attempt index must not overflow into a negative window.
	if d := b.Delay(1 << 20); d < cfg.Max/2 || d >= cfg.Max {
		t.Errorf("Delay(1<<20) = %v outside saturated window [%v, %v)", d, cfg.Max/2, cfg.Max)
	}
}

// TestBackoffSameSeedSameSequence is the determinism property the sim
// harness leans on: two instances with identical (config, seed) produce
// identical sequences.
func TestBackoffSameSeedSameSequence(t *testing.T) {
	cfg := BackoffConfig{Base: 3 * time.Millisecond, Max: 90 * time.Millisecond}
	a, b := NewBackoff(cfg, 1234), NewBackoff(cfg, 1234)
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("sequences diverge at %d: %v vs %v", i, da, db)
		}
	}
	// And a different seed must diverge, or the jitter is not jitter.
	c := NewBackoff(cfg, 1235)
	same := 0
	for i := 0; i < 20; i++ {
		if a.Delay(i) == c.Delay(i) {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical sequences")
	}
}

// TestBackoffConfigDefaults pins the zero-value fill and the Max>=Base
// normalization.
func TestBackoffConfigDefaults(t *testing.T) {
	got := BackoffConfig{}.withDefaults()
	if got.Base != DefaultBackoffBase || got.Max != DefaultBackoffMax {
		t.Errorf("defaults = %+v, want base %v max %v", got, DefaultBackoffBase, DefaultBackoffMax)
	}
	inverted := BackoffConfig{Base: time.Second, Max: time.Millisecond}.withDefaults()
	if inverted.Max != time.Second {
		t.Errorf("Max < Base not normalized: %+v", inverted)
	}
}
