package kvstore

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultyPassthroughWhenHealthy(t *testing.T) {
	f := NewFaulty(NewLocal(4), 1)
	if err := f.Set(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := f.Get(context.Background(), "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if n, _ := f.Len(context.Background()); n != 1 {
		t.Errorf("Len = %d", n)
	}
	if ok, _ := f.Delete(context.Background(), "k"); !ok {
		t.Error("Delete = false")
	}
	if f.Injected() != 0 {
		t.Errorf("injected %d faults at rate 0", f.Injected())
	}
}

func TestFaultyInjectsAtRate(t *testing.T) {
	f := NewFaulty(NewLocal(4), 42)
	f.SetFailRate(0.5)
	failures := 0
	const tries = 400
	for i := 0; i < tries; i++ {
		if err := f.Set(context.Background(), "k", nil); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		}
	}
	if failures < tries/4 || failures > tries*3/4 {
		t.Errorf("failures = %d/%d, want roughly half", failures, tries)
	}
	if f.Injected() != uint64(failures) {
		t.Errorf("Injected = %d, want %d", f.Injected(), failures)
	}
}

func TestFaultyAlwaysFails(t *testing.T) {
	f := NewFaulty(NewLocal(1), 7)
	f.SetFailRate(1)
	if _, _, err := f.Get(context.Background(), "k"); !errors.Is(err, ErrInjected) {
		t.Error("Get did not fail at rate 1")
	}
	if _, err := f.MGet(context.Background(), []string{"k"}); !errors.Is(err, ErrInjected) {
		t.Error("MGet did not fail at rate 1")
	}
	if err := f.Update(context.Background(), "k", func([]byte, bool) ([]byte, bool) { return nil, true }); !errors.Is(err, ErrInjected) {
		t.Error("Update did not fail at rate 1")
	}
	if _, err := f.Len(context.Background()); !errors.Is(err, ErrInjected) {
		t.Error("Len did not fail at rate 1")
	}
	if _, err := f.Delete(context.Background(), "k"); !errors.Is(err, ErrInjected) {
		t.Error("Delete did not fail at rate 1")
	}
}

func TestFaultyRateClamps(t *testing.T) {
	f := NewFaulty(NewLocal(1), 7)
	f.SetFailRate(-0.5)
	if err := f.Set(context.Background(), "k", nil); err != nil {
		t.Error("negative rate did not clamp to 0")
	}
	f.SetFailRate(2)
	if err := f.Set(context.Background(), "k", nil); err == nil {
		t.Error("rate above 1 did not clamp to 1")
	}
}

func TestFaultyLatency(t *testing.T) {
	f := NewFaulty(NewLocal(1), 7)
	f.SetLatency(20 * time.Millisecond)
	start := time.Now()
	f.Get(context.Background(), "k")
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("latency injection too fast: %v", elapsed)
	}
}

func TestFaultyDeterministic(t *testing.T) {
	run := func() []bool {
		f := NewFaulty(NewLocal(1), 99)
		f.SetFailRate(0.3)
		var outcomes []bool
		for i := 0; i < 50; i++ {
			outcomes = append(outcomes, f.Set(context.Background(), "k", nil) != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fault sequence not reproducible across runs with one seed")
		}
	}
}
