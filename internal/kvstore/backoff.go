package kvstore

import (
	"math/rand/v2"
	"sync"
	"time"
)

// BackoffConfig shapes the retry delay sequence used by Resilient: capped
// exponential growth with seeded half-jitter. The jitter matters under
// correlated failure — a store node coming back from a restart would
// otherwise see every waiting worker retry in the same instant — and seeding
// it keeps the whole sequence a pure function of (config, seed, call order),
// which is what lets the backoff tests pin exact delays and the simulation
// harness replay byte-identically.
type BackoffConfig struct {
	// Base is the full window of the first delay. 0 selects DefaultBackoffBase.
	Base time.Duration
	// Max caps the window growth. 0 selects DefaultBackoffMax.
	Max time.Duration
}

// Backoff window defaults: the first retry waits ~1–2ms (a store blip), the
// window doubles per attempt and saturates at ~250ms — past that a caller is
// better served by the circuit breaker than by waiting longer.
const (
	DefaultBackoffBase = 2 * time.Millisecond
	DefaultBackoffMax  = 250 * time.Millisecond
)

// withDefaults fills zero fields.
func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = DefaultBackoffBase
	}
	if c.Max <= 0 {
		c.Max = DefaultBackoffMax
	}
	if c.Max < c.Base {
		c.Max = c.Base
	}
	return c
}

// Backoff produces retry delays. Safe for concurrent use; concurrent callers
// interleave draws from one seeded RNG, so per-goroutine sequences are only
// deterministic when calls are serialized (the simulation harness serializes
// the whole pipeline for exactly this reason).
type Backoff struct {
	cfg BackoffConfig

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu
}

// NewBackoff returns a Backoff drawing jitter from a PCG seeded with seed.
func NewBackoff(cfg BackoffConfig, seed uint64) *Backoff {
	return &Backoff{
		cfg: cfg.withDefaults(),
		rng: rand.New(rand.NewPCG(seed, seed^0xB0FF)),
	}
}

// Delay returns the wait before retry number attempt (0-based: attempt 0 is
// the delay between the first try and the first retry). The window for
// attempt n is min(Base·2ⁿ, Max); the returned delay is drawn uniformly from
// its upper half [window/2, window), so delays grow monotonically in
// expectation but never synchronize across callers. One RNG draw is consumed
// per call regardless of the window size.
func (b *Backoff) Delay(attempt int) time.Duration {
	window := b.window(attempt)
	half := window / 2
	b.mu.Lock()
	jitter := time.Duration(b.rng.Float64() * float64(window-half))
	b.mu.Unlock()
	return half + jitter
}

// window computes the un-jittered window for a retry attempt, saturating at
// Max (and guarding the shift against overflow for absurd attempt counts).
func (b *Backoff) window(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	w := b.cfg.Base
	for i := 0; i < attempt; i++ {
		w *= 2
		if w >= b.cfg.Max || w < 0 {
			return b.cfg.Max
		}
	}
	if w > b.cfg.Max {
		return b.cfg.Max
	}
	return w
}
