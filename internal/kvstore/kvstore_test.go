package kvstore

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestLocalGetSetDelete(t *testing.T) {
	s := NewLocal(4)
	if _, ok, _ := s.Get(context.Background(), "missing"); ok {
		t.Error("Get on empty store reported a hit")
	}
	if err := s.Set(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get(context.Background(), "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if n, _ := s.Len(context.Background()); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
	if ok, _ := s.Delete(context.Background(), "k"); !ok {
		t.Error("Delete existing = false")
	}
	if ok, _ := s.Delete(context.Background(), "k"); ok {
		t.Error("Delete missing = true")
	}
}

func TestLocalCopySemantics(t *testing.T) {
	s := NewLocal(1)
	val := []byte{1, 2, 3}
	s.Set(context.Background(), "k", val)
	val[0] = 99 // mutating the caller's slice must not affect the store
	got, _, _ := s.Get(context.Background(), "k")
	if got[0] != 1 {
		t.Error("Set did not copy its input")
	}
	got[1] = 99 // mutating the returned slice must not affect the store
	again, _, _ := s.Get(context.Background(), "k")
	if again[1] != 2 {
		t.Error("Get did not copy its output")
	}
}

func TestLocalUpdate(t *testing.T) {
	s := NewLocal(2)
	// Create via Update.
	err := s.Update(context.Background(), "c", func(cur []byte, exists bool) ([]byte, bool) {
		if exists {
			t.Error("Update on missing key reported exists=true")
		}
		return []byte{1}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Modify via Update.
	s.Update(context.Background(), "c", func(cur []byte, exists bool) ([]byte, bool) {
		if !exists || cur[0] != 1 {
			t.Errorf("Update got cur=%v exists=%v", cur, exists)
		}
		return []byte{cur[0] + 1}, true
	})
	v, _, _ := s.Get(context.Background(), "c")
	if v[0] != 2 {
		t.Errorf("after updates value = %v, want [2]", v)
	}
	// Delete via Update.
	s.Update(context.Background(), "c", func([]byte, bool) ([]byte, bool) { return nil, false })
	if _, ok, _ := s.Get(context.Background(), "c"); ok {
		t.Error("Update delete left the key present")
	}
}

func TestLocalUpdateIsAtomic(t *testing.T) {
	s := NewLocal(1) // single shard maximizes contention
	s.Set(context.Background(), "n", EncodeInt64(0))
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Update(context.Background(), "n", func(cur []byte, _ bool) ([]byte, bool) {
					n, _ := DecodeInt64(cur)
					return EncodeInt64(n + 1), true
				})
			}
		}()
	}
	wg.Wait()
	v, _, _ := s.Get(context.Background(), "n")
	n, _ := DecodeInt64(v)
	if n != workers*perWorker {
		t.Errorf("counter = %d, want %d (lost updates)", n, workers*perWorker)
	}
}

func TestLocalMGet(t *testing.T) {
	s := NewLocal(4)
	s.Set(context.Background(), "a", []byte("1"))
	s.Set(context.Background(), "c", []byte("3"))
	vals, err := s.MGet(context.Background(), []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "1" || vals[1] != nil || string(vals[2]) != "3" {
		t.Errorf("MGet = %q", vals)
	}
}

func TestLocalStats(t *testing.T) {
	s := NewLocal(2)
	s.Set(context.Background(), "a", nil)
	s.Get(context.Background(), "a")
	s.Get(context.Background(), "b")
	snap := s.Stats().Snapshot()
	if snap.Sets != 1 || snap.Gets != 2 || snap.Hits != 1 {
		t.Errorf("stats = %+v", snap)
	}
	if hr := snap.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
}

func TestShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {4, 4}, {5, 8}} {
		if got := NewLocal(tc.in).Shards(); got != tc.want {
			t.Errorf("NewLocal(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestForEach(t *testing.T) {
	s := NewLocal(4)
	for i := 0; i < 10; i++ {
		s.Set(context.Background(), fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	seen := 0
	s.ForEach(func(string, []byte) bool { seen++; return true })
	if seen != 10 {
		t.Errorf("ForEach visited %d keys, want 10", seen)
	}
	seen = 0
	s.ForEach(func(string, []byte) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Errorf("ForEach with early stop visited %d, want 3", seen)
	}
}

func TestKeyNamespace(t *testing.T) {
	k := Key("uv", "user:42") // ids may themselves contain the separator
	ns, id, err := SplitKey(k)
	if err != nil || ns != "uv" || id != "user:42" {
		t.Errorf("SplitKey(%q) = %q,%q,%v", k, ns, id, err)
	}
	if _, _, err := SplitKey("noseparator"); err == nil {
		t.Error("SplitKey without separator must error")
	}
}

// TestLocalMatchesMapModel property-checks the sharded store against a plain
// map under a random op sequence.
func TestLocalMatchesMapModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  []byte
	}
	f := func(ops []op) bool {
		s := NewLocal(4)
		model := map[string][]byte{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%16)
			switch o.Kind % 3 {
			case 0:
				s.Set(context.Background(), k, o.Val)
				model[k] = append([]byte(nil), o.Val...)
			case 1:
				gv, gok, _ := s.Get(context.Background(), k)
				mv, mok := model[k]
				if gok != mok || string(gv) != string(mv) {
					return false
				}
			case 2:
				dok, _ := s.Delete(context.Background(), k)
				_, mok := model[k]
				delete(model, k)
				if dok != mok {
					return false
				}
			}
		}
		n, _ := s.Len(context.Background())
		return n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestHitRateZeroGets: the hit rate of an untouched store is 0, not NaN.
func TestHitRateZeroGets(t *testing.T) {
	if hr := (StatsSnapshot{}).HitRate(); hr != 0 {
		t.Errorf("HitRate with zero gets = %v, want 0", hr)
	}
	if hr := NewLocal(4).Stats().Snapshot().HitRate(); hr != 0 {
		t.Errorf("fresh store HitRate = %v, want 0", hr)
	}
}
