package kvstore

import (
	"math"
	"testing"
	"testing/quick"

	"vidrec/internal/topn"
)

func TestFloatsRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		got, err := DecodeFloats(EncodeFloats(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			// NaN compares unequal to itself; compare bit patterns instead.
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeFloatsRejectsBadLength(t *testing.T) {
	if _, err := DecodeFloats(make([]byte, 9)); err == nil {
		t.Error("expected error for non-multiple-of-8 length")
	}
}

func TestFloatScalarRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -math.Pi, math.MaxFloat64, math.Inf(-1)} {
		got, err := DecodeFloat(EncodeFloat(v))
		if err != nil || got != v {
			t.Errorf("round trip of %v = %v, %v", v, got, err)
		}
	}
	if _, err := DecodeFloat([]byte{1, 2}); err == nil {
		t.Error("expected error for short scalar encoding")
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	entries := []topn.Entry{
		{ID: "video:1", Score: 0.75},
		{ID: "", Score: -1},
		{ID: "日本語", Score: math.SmallestNonzeroFloat64},
	}
	got, err := DecodeEntries(EncodeEntries(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestEntriesRoundTripQuick(t *testing.T) {
	f := func(ids []string, scores []float64) bool {
		n := len(ids)
		if len(scores) < n {
			n = len(scores)
		}
		entries := make([]topn.Entry, n)
		for i := 0; i < n; i++ {
			entries[i] = topn.Entry{ID: ids[i], Score: scores[i]}
		}
		got, err := DecodeEntries(EncodeEntries(entries))
		if err != nil || len(got) != n {
			return false
		}
		for i := range entries {
			if got[i].ID != entries[i].ID ||
				math.Float64bits(got[i].Score) != math.Float64bits(entries[i].Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeEntriesRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                   // empty
		{0x05},               // claims 5 entries, no data
		{0x01, 0x10, 'a'},    // entry length exceeds remaining bytes
		{0x01, 0x01, 'a', 1}, // truncated score
	}
	for i, b := range cases {
		if _, err := DecodeEntries(b); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestStringsRoundTrip(t *testing.T) {
	f := func(ss []string) bool {
		got, err := DecodeStrings(EncodeStrings(ss))
		if err != nil || len(got) != len(ss) {
			return false
		}
		for i := range ss {
			if got[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeStringsRejectsCorrupt(t *testing.T) {
	if _, err := DecodeStrings([]byte{}); err == nil {
		t.Error("empty input decoded without error")
	}
	if _, err := DecodeStrings([]byte{0x02, 0x01, 'a'}); err == nil {
		t.Error("truncated list decoded without error")
	}
}

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{0, -1, 1 << 62, math.MinInt64} {
		got, err := DecodeInt64(EncodeInt64(v))
		if err != nil || got != v {
			t.Errorf("round trip %d = %d, %v", v, got, err)
		}
	}
	if _, err := DecodeInt64([]byte{1}); err == nil {
		t.Error("short input decoded without error")
	}
}
