package kvstore

import (
	"context"
	"time"

	"vidrec/internal/metrics"
)

// Resilient decorates a single backend Store with the client-side discipline
// a remote storage tier demands: a per-attempt deadline (a stalled shard
// fails the attempt instead of wedging the caller), bounded retries with
// seeded-jitter exponential backoff (a blip costs milliseconds, not a failed
// request), and a circuit breaker (a dead shard fails fast instead of costing
// every request its full retry budget). Compose one Resilient per backend and
// feed them to NewReplicated for the full replicated serving stack.
//
// Determinism contract (the simulation harness relies on this): the backoff
// jitter comes from a seeded RNG, the breaker's cooldown timing from an
// injected clock, and the actual waiting from an injectable sleep — no wall
// time anywhere, so a scenario replays its retry pattern exactly.
//
// Update callers note: the read-modify-write callback may run once per
// attempt when the inner Update fails after invoking it, so it must stay a
// pure function of the current value — the same requirement the Client
// already imposes.
type Resilient struct {
	inner   Store
	cfg     ResilienceConfig
	backoff *Backoff
	breaker *Breaker
	sleep   func(context.Context, time.Duration) error

	retries   metrics.Counter // attempts beyond the first, per operation
	exhausted metrics.Counter // operations that failed after the full budget
}

// ResilienceConfig configures a Resilient decorator.
type ResilienceConfig struct {
	// OpTimeout is the per-attempt deadline layered onto the caller's
	// context. 0 disables the layer (the caller's own deadline still
	// applies).
	OpTimeout time.Duration
	// MaxRetries is how many retries follow a failed first attempt.
	MaxRetries int
	// Backoff shapes the inter-retry delays.
	Backoff BackoffConfig
	// Breaker configures the per-backend circuit breaker; a zero Threshold
	// disables it.
	Breaker BreakerConfig
}

// DefaultResilienceConfig returns production-shaped settings: a generous
// per-attempt deadline, two retries inside a ~10ms budget, and a breaker that
// trips after five consecutive failures.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		OpTimeout:  2 * time.Second,
		MaxRetries: 2,
		Backoff:    BackoffConfig{Base: DefaultBackoffBase, Max: DefaultBackoffMax},
		Breaker:    BreakerConfig{Threshold: 5, Cooldown: DefaultBreakerCooldown},
	}
}

// NewResilient wraps inner. seed drives the backoff jitter; the clock and
// sleep default to real time (SetClock/SetSleep inject virtual ones).
func NewResilient(inner Store, cfg ResilienceConfig, seed uint64) *Resilient {
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	return &Resilient{
		inner:   inner,
		cfg:     cfg,
		backoff: NewBackoff(cfg.Backoff, seed),
		breaker: NewBreaker(cfg.Breaker, nil),
		sleep:   sleepContext,
	}
}

// SetClock injects the time source for breaker cooldown timing. A nil fn
// restores the wall clock.
func (r *Resilient) SetClock(fn func() time.Time) { r.breaker.SetClock(fn) }

// SetSleep injects the waiting primitive used between retries; the simulation
// harness substitutes a no-op so replay never blocks on real timers. A nil fn
// restores the default context-aware sleep.
func (r *Resilient) SetSleep(fn func(context.Context, time.Duration) error) {
	if fn == nil {
		fn = sleepContext
	}
	r.sleep = fn
}

// Breaker exposes the decorator's circuit breaker for telemetry and tests.
func (r *Resilient) Breaker() *Breaker { return r.breaker }

// ResilienceStats is a point-in-time snapshot of the decorator's counters.
type ResilienceStats struct {
	Retries   uint64 // attempts beyond the first
	Exhausted uint64 // operations failed after the full retry budget
	Breaker   BreakerStats
}

// Stats returns the decorator's counters.
func (r *Resilient) Stats() ResilienceStats {
	return ResilienceStats{
		Retries:   r.retries.Load(),
		Exhausted: r.exhausted.Load(),
		Breaker:   r.breaker.Stats(),
	}
}

// sleepContext waits for d or until ctx is done, whichever is first.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do runs op under the breaker/retry/deadline discipline. The error returned
// is the last attempt's error — wrapped nowhere, so errors.Is sees the root
// cause (ErrInjected, net errors, ...) through the whole decorator stack.
func (r *Resilient) do(ctx context.Context, op func(context.Context) error) error {
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !r.breaker.Allow() {
			// Fail fast; retrying against an open breaker would just spin
			// on rejections until the cooldown elapses.
			return ErrBreakerOpen
		}
		err := r.attempt(ctx, op)
		if err == nil {
			r.breaker.Success()
			return nil
		}
		r.breaker.Failure()
		last = err
		// The caller's own context expiring is not retryable: the budget
		// belongs to the request, not to this decorator.
		if attempt >= r.cfg.MaxRetries || ctx.Err() != nil {
			r.exhausted.Inc()
			return last
		}
		r.retries.Inc()
		if serr := r.sleep(ctx, r.backoff.Delay(attempt)); serr != nil {
			return serr
		}
	}
}

// attempt runs op once under the per-attempt deadline.
func (r *Resilient) attempt(ctx context.Context, op func(context.Context) error) error {
	if r.cfg.OpTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.OpTimeout)
		defer cancel()
	}
	return op(ctx)
}

// Get implements Store.
func (r *Resilient) Get(ctx context.Context, key string) ([]byte, bool, error) {
	var v []byte
	var ok bool
	err := r.do(ctx, func(ctx context.Context) error {
		var err error
		v, ok, err = r.inner.Get(ctx, key)
		return err
	})
	if err != nil {
		return nil, false, err
	}
	return v, ok, nil
}

// Set implements Store.
func (r *Resilient) Set(ctx context.Context, key string, val []byte) error {
	return r.do(ctx, func(ctx context.Context) error {
		return r.inner.Set(ctx, key, val)
	})
}

// Delete implements Store.
func (r *Resilient) Delete(ctx context.Context, key string) (bool, error) {
	var ok bool
	err := r.do(ctx, func(ctx context.Context) error {
		var err error
		ok, err = r.inner.Delete(ctx, key)
		return err
	})
	if err != nil {
		return false, err
	}
	return ok, nil
}

// MGet implements Store.
func (r *Resilient) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	var vals [][]byte
	err := r.do(ctx, func(ctx context.Context) error {
		var err error
		vals, err = r.inner.MGet(ctx, keys)
		return err
	})
	if err != nil {
		return nil, err
	}
	return vals, nil
}

// Update implements Store. fn may run once per attempt; see the type comment.
func (r *Resilient) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	return r.do(ctx, func(ctx context.Context) error {
		return r.inner.Update(ctx, key, fn)
	})
}

// Len implements Store.
func (r *Resilient) Len(ctx context.Context) (int, error) {
	var n int
	err := r.do(ctx, func(ctx context.Context) error {
		var err error
		n, err = r.inner.Len(ctx)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}
