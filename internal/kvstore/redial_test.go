package kvstore

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestClientRedialAfterServerRestart is the poisoned-pool regression test: a
// server restart closes every TCP connection the client has pooled, and the
// next operation must redial transparently instead of failing on the first
// stale connection it pulls from the pool.
func TestClientRedialAfterServerRestart(t *testing.T) {
	ctx := context.Background()
	backing := NewLocal(4)
	srv, err := NewServer(ctx, backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }() // test teardown

	// Exercise the connection so it lands back in the pool.
	if err := cli.Set(ctx, "k", []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Kill and restart the server on the same address; the backing store
	// survives, as it would for a KV shard process restart.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(ctx, backing, addr)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer func() { _ = srv2.Close() }() // test teardown

	// The pooled connection is now poisoned. The op must succeed by
	// discarding it and redialing — not surface the stale conn's error.
	v, ok, err := cli.Get(ctx, "k")
	if err != nil {
		t.Fatalf("Get after restart = %v, want transparent redial", err)
	}
	if !ok || string(v) != "before" {
		t.Fatalf("Get after restart = %q,%v, want pre-restart value", v, ok)
	}
	// And writes work again too.
	if err := cli.Set(ctx, "k2", []byte("after")); err != nil {
		t.Fatalf("Set after restart = %v", err)
	}
}

// TestClientRedialDrainsWholePool covers the multi-connection case: several
// poisoned conns may be pooled (concurrent workers), and one operation may
// need to discard more than one before redialing.
func TestClientRedialDrainsWholePool(t *testing.T) {
	ctx := context.Background()
	backing := NewLocal(4)
	srv, err := NewServer(ctx, backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }() // test teardown

	// Force several connections into the pool: check them all out first (so
	// each get dials fresh), then run one exchange on each — a successful
	// exchange returns the conn to the pool.
	const conns = 4
	held := make([]*clientConn, 0, conns)
	for i := 0; i < conns; i++ {
		cc, _, err := cli.get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, cc)
	}
	for i, cc := range held {
		resp, err := cli.exchange(ctx, cc, &request{Op: opLen})
		if err != nil || resp.ErrMsg != "" {
			t.Fatalf("conn %d exchange: %v %q", i, err, resp.ErrMsg)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(ctx, backing, addr)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer func() { _ = srv2.Close() }() // test teardown

	// Every pooled conn is poisoned; ops must chew through them and recover.
	for i := 0; i < conns+1; i++ {
		if err := cli.Set(ctx, "k", []byte("v")); err != nil {
			t.Fatalf("op %d after restart = %v", i, err)
		}
	}
}

// TestClientServerErrorNotRetried pins the other half of the retry contract:
// an error *reported by the server* means the request was delivered and
// answered, so it must surface immediately rather than trigger a redial loop.
func TestClientServerErrorNotRetried(t *testing.T) {
	ctx := context.Background()
	faulty := NewFaulty(NewLocal(4), 1)
	faulty.SetFailRate(1)
	srv, err := NewServer(ctx, faulty, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }() // test teardown
	cli, err := DialContext(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }() // test teardown

	done := make(chan error, 1)
	go func() {
		_, _, err := cli.Get(ctx, "k")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "injected") {
			t.Fatalf("err = %v, want the server-reported injected fault", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server-reported error sent the client into a retry loop")
	}
	if got := faulty.Ops(); got != 1 {
		t.Errorf("server backing saw %d ops, want exactly 1 (no redial retry)", got)
	}
}
