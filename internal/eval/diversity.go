package eval

import (
	"fmt"
	"sort"
)

// Diversity metrics for §5.2.1's claim that demographic filtering broadens
// recommendations ("we broaden the span of recommendations and provide
// chances for users to discover new interests"): accuracy metrics cannot
// see whether every user receives the same narrow slice of the catalog.

// DiversityStats summarizes how broad a recommender's output is across a
// user population.
type DiversityStats struct {
	// CatalogCoverage is the fraction of the catalog that appeared in at
	// least one user's list — aggregate diversity.
	CatalogCoverage float64
	// MeanTypesPerList is the average number of distinct video types
	// within one user's list — intra-list diversity.
	MeanTypesPerList float64
	// Gini measures how unevenly recommendations concentrate on few
	// videos (0 = perfectly even exposure, →1 = everything goes to one
	// video) — the popularity-feedback-loop indicator.
	Gini float64
	// UsersEvaluated counts users who received a non-empty list.
	UsersEvaluated int
}

// MeasureDiversity runs the recommender for every user and summarizes the
// spread of its output. catalogSize is the total number of recommendable
// videos; typeOf resolves a video's category ("" allowed for unknown).
func MeasureDiversity(rec Recommender, users []string, n, catalogSize int, typeOf func(string) string) (DiversityStats, error) {
	if n <= 0 {
		return DiversityStats{}, fmt.Errorf("eval: n must be positive, got %d", n)
	}
	if catalogSize <= 0 {
		return DiversityStats{}, fmt.Errorf("eval: catalogSize must be positive, got %d", catalogSize)
	}
	exposure := make(map[string]int)
	var typeSum float64
	served := 0
	for _, u := range users {
		recs, err := rec.Recommend(u, n)
		if err != nil {
			return DiversityStats{}, fmt.Errorf("eval: recommend for %s: %w", u, err)
		}
		if len(recs) == 0 {
			continue
		}
		served++
		types := make(map[string]bool, len(recs))
		for _, v := range recs {
			exposure[v]++
			types[typeOf(v)] = true
		}
		typeSum += float64(len(types))
	}
	stats := DiversityStats{UsersEvaluated: served}
	if served == 0 {
		return stats, nil
	}
	stats.CatalogCoverage = float64(len(exposure)) / float64(catalogSize)
	stats.MeanTypesPerList = typeSum / float64(served)
	stats.Gini = gini(exposure)
	return stats, nil
}

// gini computes the Gini coefficient of the exposure counts.
func gini(exposure map[string]int) float64 {
	if len(exposure) <= 1 {
		return 0
	}
	counts := make([]float64, 0, len(exposure))
	var total float64
	for _, c := range exposure {
		counts = append(counts, float64(c))
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(counts)
	// G = (2·Σ i·x_i / (n·Σ x_i)) − (n+1)/n with 1-based ranks i over the
	// sorted values.
	var weighted float64
	for i, x := range counts {
		weighted += float64(i+1) * x
	}
	n := float64(len(counts))
	return 2*weighted/(n*total) - (n+1)/n
}
