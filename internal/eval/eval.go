// Package eval implements the paper's offline evaluation protocol (§6.1):
// top-N recommendation quality measured by recall (Eq. 13) and by the
// percentile average rank (Eq. 14) against a held-out test day.
//
// Note on Eq. 13: the paper's formula divides each user's hit count by N
// (the recommendation list length) and averages over test users — despite
// the name, that is precision@N in standard terminology. We implement the
// formula as printed, since the figures were produced with it; the relative
// comparisons (which model wins) are unaffected by the naming.
package eval

import (
	"fmt"
	"sort"

	"vidrec/internal/feedback"
)

// Recommender produces a ranked top-n recommendation list for a user.
// All evaluated systems (the rMF pipeline and every baseline) implement it.
type Recommender interface {
	Recommend(userID string, n int) ([]string, error)
}

// TestSet holds, for every test user, the videos they liked in the test
// period with the confidence level of the strongest action — the "ordered
// interested video list ... ranked by the corresponding user actions'
// confidence levels" of Eq. 14.
type TestSet struct {
	liked map[string]map[string]float64
	// ordered caches each user's interest list sorted by confidence
	// descending (ties broken by video id for determinism).
	ordered map[string][]string
}

// BuildTestSet derives the per-user liked sets from raw test actions: a
// video is liked if any action on it carries a positive confidence (binary
// rating 1, Eq. 7), and its interest level is the maximum confidence seen.
func BuildTestSet(actions []feedback.Action, w feedback.Weights) *TestSet {
	ts := &TestSet{
		liked:   make(map[string]map[string]float64),
		ordered: make(map[string][]string),
	}
	for _, a := range actions {
		weight := w.Weight(a)
		if weight <= 0 {
			continue
		}
		m := ts.liked[a.UserID]
		if m == nil {
			m = make(map[string]float64)
			ts.liked[a.UserID] = m
		}
		if weight > m[a.VideoID] {
			m[a.VideoID] = weight
		}
	}
	for u, m := range ts.liked {
		vids := make([]string, 0, len(m))
		for v := range m {
			vids = append(vids, v)
		}
		sort.Slice(vids, func(i, j int) bool {
			if m[vids[i]] != m[vids[j]] {
				return m[vids[i]] > m[vids[j]]
			}
			return vids[i] < vids[j]
		})
		ts.ordered[u] = vids
	}
	return ts
}

// Users returns the test users, sorted for deterministic iteration.
func (t *TestSet) Users() []string {
	out := make([]string, 0, len(t.liked))
	for u := range t.liked {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Liked reports whether user u liked video v in the test period.
func (t *TestSet) Liked(u, v string) bool {
	_, ok := t.liked[u][v]
	return ok
}

// LikedCount returns how many videos u liked.
func (t *TestSet) LikedCount(u string) int { return len(t.liked[u]) }

// Interest returns u's interest list, strongest first.
func (t *TestSet) Interest(u string) []string { return t.ordered[u] }

// Metrics bundles the two offline quality measures.
type Metrics struct {
	// Recall is Eq. 13 at the evaluated N.
	Recall float64
	// AvgRank is Eq. 14; lower is better, ~0.5 means recommended videos
	// sit mid-list in users' true interest ordering. It is 0 (undefined)
	// when no recommended video appears in any user's test interests.
	AvgRank float64
	// UsersEvaluated counts test users for whom a recommendation list was
	// produced.
	UsersEvaluated int
}

// Evaluate computes recall@n and average rank for a recommender over the
// test set with a single recommendation pass per user.
func Evaluate(rec Recommender, ts *TestSet, n int) (Metrics, error) {
	if n <= 0 {
		return Metrics{}, fmt.Errorf("eval: n must be positive, got %d", n)
	}
	var (
		recallSum   float64
		rankNum     float64
		rankDen     float64
		usersScored int
	)
	for _, u := range ts.Users() {
		recs, err := rec.Recommend(u, n)
		if err != nil {
			return Metrics{}, fmt.Errorf("eval: recommend for %s: %w", u, err)
		}
		usersScored++
		// Eq. 13 numerator for this user: hits / N.
		hits := 0
		for _, v := range recs {
			if ts.Liked(u, v) {
				hits++
			}
		}
		recallSum += float64(hits) / float64(n)

		// Eq. 14 iterates the user's test videos: each liked video i gets
		// the weight 1 − rank_ui, where rank_ui is i's percentile in the
		// recommendation list (1, hence weight 0, when not recommended),
		// and is scored by rank^t_ui, its percentile in the user's true
		// interest ordering. The average answers: of the test videos the
		// model surfaced, how deep in the user's real preference list do
		// they sit? ~0.5 means mid-list, lower is better.
		recPos := make(map[string]int, len(recs))
		for k, v := range recs {
			recPos[v] = k
		}
		interest := ts.Interest(u)
		for i, v := range interest {
			k, ok := recPos[v]
			if !ok {
				continue // rank_ui = 1 ⇒ weight 0
			}
			w := 1 - float64(k)/float64(len(recs))
			rt := 0.0
			if len(interest) > 1 {
				rt = float64(i) / float64(len(interest)-1)
			}
			rankNum += w * rt
			rankDen += w
		}
	}
	m := Metrics{UsersEvaluated: usersScored}
	if usersScored > 0 {
		m.Recall = recallSum / float64(usersScored)
	}
	if rankDen > 0 {
		m.AvgRank = rankNum / rankDen
	}
	return m, nil
}

// RecallAtN computes only Eq. 13.
func RecallAtN(rec Recommender, ts *TestSet, n int) (float64, error) {
	m, err := Evaluate(rec, ts, n)
	return m.Recall, err
}

// AverageRank computes only Eq. 14.
func AverageRank(rec Recommender, ts *TestSet, n int) (float64, error) {
	m, err := Evaluate(rec, ts, n)
	return m.AvgRank, err
}

// RecallCurve computes recall@n for every n in 1..maxN with a single
// recommendation pass per user (each recall@n is evaluated on the length-n
// prefix of the top-maxN list) — the data behind the paper's Figure 4.
func RecallCurve(rec Recommender, ts *TestSet, maxN int) ([]float64, error) {
	if maxN <= 0 {
		return nil, fmt.Errorf("eval: maxN must be positive, got %d", maxN)
	}
	sums := make([]float64, maxN)
	users := 0
	for _, u := range ts.Users() {
		recs, err := rec.Recommend(u, maxN)
		if err != nil {
			return nil, fmt.Errorf("eval: recommend for %s: %w", u, err)
		}
		users++
		hits := 0
		for k := 0; k < maxN; k++ {
			if k < len(recs) && ts.Liked(u, recs[k]) {
				hits++
			}
			sums[k] += float64(hits) / float64(k+1)
		}
	}
	if users == 0 {
		return make([]float64, maxN), nil
	}
	for k := range sums {
		sums[k] /= float64(users)
	}
	return sums, nil
}

// RecommenderFunc adapts a function to the Recommender interface.
type RecommenderFunc func(userID string, n int) ([]string, error)

// Recommend implements Recommender.
func (f RecommenderFunc) Recommend(userID string, n int) ([]string, error) {
	return f(userID, n)
}
