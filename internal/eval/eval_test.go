package eval

import (
	"math"
	"testing"
	"time"

	"vidrec/internal/feedback"
)

func action(u, v string, typ feedback.ActionType) feedback.Action {
	return feedback.Action{UserID: u, VideoID: v, Type: typ}
}

func fullWatch(u, v string) feedback.Action {
	return feedback.Action{
		UserID: u, VideoID: v, Type: feedback.PlayTime,
		ViewTime: time.Hour, VideoLength: time.Hour,
	}
}

func fixedRec(lists map[string][]string) Recommender {
	return RecommenderFunc(func(u string, n int) ([]string, error) {
		l := lists[u]
		if len(l) > n {
			l = l[:n]
		}
		return l, nil
	})
}

func TestBuildTestSetLikesOnlyPositive(t *testing.T) {
	w := feedback.DefaultWeights()
	ts := BuildTestSet([]feedback.Action{
		action("u1", "a", feedback.Click),
		action("u1", "b", feedback.Impress), // weight 0, not liked
		action("u2", "c", feedback.Share),
	}, w)
	if !ts.Liked("u1", "a") || ts.Liked("u1", "b") {
		t.Error("liked set wrong for u1")
	}
	if !ts.Liked("u2", "c") {
		t.Error("liked set wrong for u2")
	}
	if got := ts.Users(); len(got) != 2 || got[0] != "u1" || got[1] != "u2" {
		t.Errorf("Users = %v", got)
	}
	if ts.LikedCount("u1") != 1 {
		t.Errorf("LikedCount(u1) = %d", ts.LikedCount("u1"))
	}
}

func TestInterestOrderedByConfidence(t *testing.T) {
	w := feedback.DefaultWeights()
	ts := BuildTestSet([]feedback.Action{
		action("u1", "clicked", feedback.Click), // weight 1
		fullWatch("u1", "watched"),              // weight 2.5
		action("u1", "shared", feedback.Share),  // weight 4
		action("u1", "watched", feedback.Click), // weaker action must not demote
	}, w)
	got := ts.Interest("u1")
	want := []string{"shared", "watched", "clicked"}
	if len(got) != 3 {
		t.Fatalf("Interest = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Interest = %v, want %v", got, want)
			break
		}
	}
}

func TestRecallEquation13(t *testing.T) {
	w := feedback.DefaultWeights()
	ts := BuildTestSet([]feedback.Action{
		action("u1", "a", feedback.Click),
		action("u1", "b", feedback.Click),
		action("u2", "c", feedback.Click),
	}, w)
	// u1 gets [a, x, b, y, z] (2 hits), u2 gets [p, q, r, s, t] (0 hits).
	rec := fixedRec(map[string][]string{
		"u1": {"a", "x", "b", "y", "z"},
		"u2": {"p", "q", "r", "s", "t"},
	})
	got, err := RecallAtN(rec, ts, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0/5.0 + 0.0/5.0) / 2.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("recall = %v, want %v", got, want)
	}
}

func TestPerfectRecommenderBeatsRandom(t *testing.T) {
	w := feedback.DefaultWeights()
	actions := []feedback.Action{
		action("u1", "a", feedback.Share),
		action("u1", "b", feedback.Click),
		action("u2", "a", feedback.Click),
	}
	ts := BuildTestSet(actions, w)
	perfect := fixedRec(map[string][]string{
		"u1": {"a", "b"},
		"u2": {"a", "x"},
	})
	awful := fixedRec(map[string][]string{
		"u1": {"x", "y"},
		"u2": {"y", "z"},
	})
	mp, _ := Evaluate(perfect, ts, 2)
	ma, _ := Evaluate(awful, ts, 2)
	if mp.Recall <= ma.Recall {
		t.Errorf("perfect recall %v not above awful %v", mp.Recall, ma.Recall)
	}
	// A recommender that never surfaces a test video has an undefined
	// (zero) avg rank: no (u,i) pair carries weight.
	if ma.AvgRank != 0 {
		t.Errorf("never-hit recommender avg rank = %v, want 0 (undefined)", ma.AvgRank)
	}
	// Ranking the interest list worst-first must score worse than
	// best-first.
	reversed := fixedRec(map[string][]string{
		"u1": {"b", "a"},
		"u2": {"x", "a"},
	})
	mr, _ := Evaluate(reversed, ts, 2)
	if mp.AvgRank >= mr.AvgRank {
		t.Errorf("perfect avg rank %v not below reversed %v", mp.AvgRank, mr.AvgRank)
	}
}

func TestAvgRankEquation14Weighting(t *testing.T) {
	w := feedback.DefaultWeights()
	// u1's true interest order: shared (4) > watched (2.5) > clicked (1).
	ts := BuildTestSet([]feedback.Action{
		action("u1", "clicked", feedback.Click),
		fullWatch("u1", "watched"),
		action("u1", "shared", feedback.Share),
	}, w)
	// Recommending the interest list in true order: positions k=0,1,2 with
	// weights 1, 2/3, 1/3 and true percentiles 0, 0.5, 1.
	rec := fixedRec(map[string][]string{"u1": {"shared", "watched", "clicked"}})
	got, err := AverageRank(rec, ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0*0 + (2.0/3)*0.5 + (1.0/3)*1) / (1 + 2.0/3 + 1.0/3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("avg rank = %v, want %v", got, want)
	}
	// Recommending in reverse order must score strictly worse.
	reverse := fixedRec(map[string][]string{"u1": {"clicked", "watched", "shared"}})
	gotRev, _ := AverageRank(reverse, ts, 3)
	if gotRev <= got {
		t.Errorf("reversed order rank %v not above in-order rank %v", gotRev, got)
	}
}

func TestRecallCurveMatchesEvaluatePrefixes(t *testing.T) {
	w := feedback.DefaultWeights()
	ts := BuildTestSet([]feedback.Action{
		action("u1", "a", feedback.Click),
		action("u1", "b", feedback.Click),
		action("u2", "a", feedback.Click),
	}, w)
	rec := fixedRec(map[string][]string{
		"u1": {"x", "a", "b", "y", "z"},
		"u2": {"a", "p", "q", "r", "s"},
	})
	curve, err := RecallCurve(rec, ts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 5 {
		t.Fatalf("curve length = %d", len(curve))
	}
	// Each curve point must equal Evaluate's recall at that N, because the
	// fixed recommender's prefix property holds by construction.
	for n := 1; n <= 5; n++ {
		m, err := Evaluate(rec, ts, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(curve[n-1]-m.Recall) > 1e-12 {
			t.Errorf("curve[%d] = %v, Evaluate recall = %v", n-1, curve[n-1], m.Recall)
		}
	}
	// Hand-check n=2: u1 hits {a} → 1/2; u2 hits {a} → 1/2; mean 1/2.
	if math.Abs(curve[1]-0.5) > 1e-12 {
		t.Errorf("recall@2 = %v, want 0.5", curve[1])
	}
}

func TestRecallCurveValidation(t *testing.T) {
	ts := BuildTestSet(nil, feedback.DefaultWeights())
	if _, err := RecallCurve(fixedRec(nil), ts, 0); err == nil {
		t.Error("maxN=0 accepted")
	}
	curve, err := RecallCurve(fixedRec(nil), ts, 3)
	if err != nil || len(curve) != 3 {
		t.Errorf("empty test set curve = %v, %v", curve, err)
	}
}

func TestRecallCurveShortLists(t *testing.T) {
	w := feedback.DefaultWeights()
	ts := BuildTestSet([]feedback.Action{action("u1", "a", feedback.Click)}, w)
	// Recommender returns fewer items than requested.
	rec := fixedRec(map[string][]string{"u1": {"a"}})
	curve, err := RecallCurve(rec, ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range want {
		if math.Abs(curve[i]-want[i]) > 1e-12 {
			t.Errorf("curve = %v, want %v", curve, want)
			break
		}
	}
}

func TestEvaluateRejectsBadN(t *testing.T) {
	ts := BuildTestSet(nil, feedback.DefaultWeights())
	if _, err := Evaluate(fixedRec(nil), ts, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestEvaluateEmptyTestSet(t *testing.T) {
	ts := BuildTestSet(nil, feedback.DefaultWeights())
	m, err := Evaluate(fixedRec(nil), ts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Recall != 0 || m.AvgRank != 0 || m.UsersEvaluated != 0 {
		t.Errorf("empty test set metrics = %+v", m)
	}
}

func TestEvaluatePropagatesRecommenderError(t *testing.T) {
	ts := BuildTestSet([]feedback.Action{action("u1", "a", feedback.Click)}, feedback.DefaultWeights())
	rec := RecommenderFunc(func(string, int) ([]string, error) {
		return nil, errTest
	})
	if _, err := Evaluate(rec, ts, 5); err == nil {
		t.Error("recommender error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
