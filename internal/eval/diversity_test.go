package eval

import (
	"math"
	"strconv"
	"testing"
)

func typeByPrefix(v string) string {
	if len(v) == 0 {
		return ""
	}
	return v[:1]
}

func TestMeasureDiversityValidation(t *testing.T) {
	rec := fixedRec(nil)
	if _, err := MeasureDiversity(rec, nil, 0, 10, typeByPrefix); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MeasureDiversity(rec, nil, 5, 0, typeByPrefix); err == nil {
		t.Error("catalogSize=0 accepted")
	}
}

func TestMeasureDiversityEmpty(t *testing.T) {
	stats, err := MeasureDiversity(fixedRec(nil), []string{"u1"}, 5, 10, typeByPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UsersEvaluated != 0 || stats.CatalogCoverage != 0 {
		t.Errorf("stats for empty recommender = %+v", stats)
	}
}

func TestMeasureDiversityNarrowVsBroad(t *testing.T) {
	users := make([]string, 20)
	for i := range users {
		users[i] = "u" + strconv.Itoa(i)
	}
	// Narrow: everyone gets the same two same-type videos.
	narrow := fixedRec(func() map[string][]string {
		m := map[string][]string{}
		for _, u := range users {
			m[u] = []string{"a1", "a2"}
		}
		return m
	}())
	// Broad: each user gets their own pair spanning two types.
	broad := fixedRec(func() map[string][]string {
		m := map[string][]string{}
		for i, u := range users {
			m[u] = []string{"a" + strconv.Itoa(i), "b" + strconv.Itoa(i)}
		}
		return m
	}())
	const catalog = 100
	ns, err := MeasureDiversity(narrow, users, 2, catalog, typeByPrefix)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := MeasureDiversity(broad, users, 2, catalog, typeByPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if ns.CatalogCoverage >= bs.CatalogCoverage {
		t.Errorf("narrow coverage %v not below broad %v", ns.CatalogCoverage, bs.CatalogCoverage)
	}
	if ns.MeanTypesPerList >= bs.MeanTypesPerList {
		t.Errorf("narrow type diversity %v not below broad %v", ns.MeanTypesPerList, bs.MeanTypesPerList)
	}
	if want := 2.0 / catalog; math.Abs(ns.CatalogCoverage-want) > 1e-12 {
		t.Errorf("narrow coverage = %v, want %v", ns.CatalogCoverage, want)
	}
	if bs.MeanTypesPerList != 2 {
		t.Errorf("broad types per list = %v, want 2", bs.MeanTypesPerList)
	}
	// Exposure is perfectly even in both constructions → Gini ≈ 0.
	if bs.Gini > 1e-9 {
		t.Errorf("broad Gini = %v, want 0", bs.Gini)
	}
}

func TestGiniConcentration(t *testing.T) {
	if g := gini(map[string]int{"a": 10}); g != 0 {
		t.Errorf("single-item Gini = %v, want 0", g)
	}
	even := gini(map[string]int{"a": 5, "b": 5, "c": 5, "d": 5})
	if math.Abs(even) > 1e-9 {
		t.Errorf("even Gini = %v, want 0", even)
	}
	skewed := gini(map[string]int{"a": 97, "b": 1, "c": 1, "d": 1})
	if skewed <= 0.5 {
		t.Errorf("skewed Gini = %v, want > 0.5", skewed)
	}
	if skewed <= even {
		t.Error("skewed exposure not above even exposure")
	}
}
