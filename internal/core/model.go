package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
	"vidrec/internal/vecmath"
)

// State is the subset of model parameters one SGD step touches: the acting
// user's vector and bias and the target video's vector and bias.
type State struct {
	UserVec  []float64
	UserBias float64
	ItemVec  []float64
	ItemBias float64
}

// Step applies one update of Algorithm 1 to s and returns the new state.
// The inputs are the global mean μ and the action's binary rating and
// confidence weight; the rule-specific learning rate (Eq. 8) and training
// target are derived from p. Step is pure: it never mutates its input
// vectors, so callers (the ComputeMF bolt) can safely hand the results to a
// different worker for storage.
func (p Params) Step(s State, mu, rating, weight float64) State {
	eta := p.LearningRate(weight)
	target := p.TrainingRating(rating, weight)
	// e_ui = r_ui − μ − b_u − b_i − x_uᵀ y_i   (Eq. 4)
	err := target - mu - s.UserBias - s.ItemBias - vecmath.Dot(s.UserVec, s.ItemVec)
	next := State{
		UserVec:  vecmath.Clone(s.UserVec),
		ItemVec:  vecmath.Clone(s.ItemVec),
		UserBias: vecmath.BiasStep(eta, err, p.Lambda, s.UserBias),
		ItemBias: vecmath.BiasStep(eta, err, p.Lambda, s.ItemBias),
	}
	// Both vectors move using the pre-update value of the other
	// (Algorithm 1 lines 13–14 read the old x_u, y_i).
	vecmath.SGDStep(eta, err, p.Lambda, next.UserVec, s.ItemVec)
	vecmath.SGDStep(eta, err, p.Lambda, next.ItemVec, s.UserVec)
	return next
}

// PredictState evaluates Eq. 2 for a (user, item) state pair under global
// mean mu.
func PredictState(s State, mu float64) float64 {
	return mu + s.UserBias + s.ItemBias + vecmath.Dot(s.UserVec, s.ItemVec)
}

// Stats counts the actions a model has seen, split by outcome.
type Stats struct {
	// Received counts every action handed to ProcessAction.
	Received atomic.Uint64
	// Trained counts actions that updated parameters (rating 1).
	Trained atomic.Uint64
	// Skipped counts actions with rating 0 (impressions).
	Skipped atomic.Uint64
	// NewUsers and NewItems count cold-start initializations.
	NewUsers atomic.Uint64
	NewItems atomic.Uint64
	// Diverged counts updates discarded because they produced non-finite
	// parameters (runaway learning rate, corrupt input). The previous
	// state is kept, so one bad action cannot poison the store.
	Diverged atomic.Uint64
}

// Model is the online MF model bound to a key-value store. Multiple models
// (the per-demographic-group models of §5.2.2) can share one store: each
// model namespaces its keys with its name.
//
// Model is safe for concurrent use, but two concurrent updates touching the
// same user or item can interleave their read-modify-write cycles; the
// production deployment avoids that by fields-grouping the action stream so
// each key has a single writer (§5.1). Within one process Model additionally
// relies on the store's per-key Update atomicity for the global-mean counter.
type Model struct {
	name   string
	store  kvstore.Store
	params Params
	stats  Stats
	cache  *objcache.Cache // nil disables the decoded-value read cache

	nsUserVec  string
	nsItemVec  string
	nsUserBias string
	nsItemBias string
	nsItemQ8   string
	keyMean    string

	// quant, when non-nil, holds the quantized serving table (see quant.go):
	// StoreItem publishes an int8 record per item and ScoreCandidatesQ8 scores
	// from the dense slot-indexed table. itemHook observes every stored item
	// vector (the ANN index's feed). Both are wired before traffic starts.
	quant    *quantTable
	itemHook func(id string, vec []float64)

	// keyMemo interns the item-parameter store keys: they are pure functions
	// of the item id, and serving composes the same few hundred on every
	// request. Item ids are catalog-bounded, so the memo is too. User keys
	// memoize separately in ukVec/ukBias — each entry is an order of
	// magnitude smaller than the user's stored vector under the same key, so
	// the memo tracks the store's own per-user growth.
	keyMu   sync.RWMutex
	keyMemo map[string]itemKeys // guarded by keyMu

	ukVec  *kvstore.Keys
	ukBias *kvstore.Keys

	// scorePool recycles scoreCached's per-call working arrays; q8Pool does
	// the same for ScoreCandidatesQ8.
	scorePool sync.Pool
	q8Pool    sync.Pool
}

// itemKeys is one item's store keys (vector, bias, and quantized-record
// namespaces).
type itemKeys struct{ vec, bias, q8 string }

// itemKeysFor returns the item's memoized store keys, composing and
// remembering them on first sight.
func (m *Model) itemKeysFor(id string) itemKeys {
	m.keyMu.RLock()
	k, ok := m.keyMemo[id]
	m.keyMu.RUnlock()
	if ok {
		return k
	}
	k = itemKeys{
		vec:  kvstore.Key(m.nsItemVec, id),
		bias: kvstore.Key(m.nsItemBias, id),
		q8:   kvstore.Key(m.nsItemQ8, id),
	}
	m.keyMu.Lock()
	m.keyMemo[id] = k
	m.keyMu.Unlock()
	return k
}

// NewModel creates or reattaches a model named name on the given store.
func NewModel(name string, store kvstore.Store, p Params) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("core: model name must not be empty")
	}
	if store == nil {
		return nil, fmt.Errorf("core: store must not be nil")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{ // alloccheck: once per model; ModelSet memoizes constructed models
		name:       name,
		store:      store,
		params:     p,
		nsUserVec:  name + ".uv",                      // alloccheck: once per model
		nsItemVec:  name + ".iv",                      // alloccheck: once per model
		nsUserBias: name + ".ub",                      // alloccheck: once per model
		nsItemBias: name + ".ib",                      // alloccheck: once per model
		nsItemQ8:   name + ".q8",                      // alloccheck: once per model
		keyMean:    kvstore.Key(name+".meta", "mean"), // alloccheck: once per model
		keyMemo:    make(map[string]itemKeys),         // alloccheck: once per model
		ukVec:      kvstore.NewKeys(name + ".uv"),     // alloccheck: once per model
		ukBias:     kvstore.NewKeys(name + ".ub"),     // alloccheck: once per model
	}, nil
}

// Name returns the model's namespace name.
func (m *Model) Name() string { return m.name }

// SetCache attaches a decoded-value read cache. The cache must wrap the same
// store via objcache.WrapStore (NewSystem does both), or writes would not
// invalidate it. Cached vectors are shared across callers and must be treated
// as read-only — every consumer either dots them in place or clones before
// mutating (Params.Step clones).
func (m *Model) SetCache(c *objcache.Cache) { m.cache = c }

// Params returns the model's hyper-parameters.
func (m *Model) Params() Params { return m.params }

// Stats exposes the model's action counters.
func (m *Model) Stats() *Stats { return &m.stats }

// initVector deterministically initializes a latent vector for a new entity.
// Components are pseudo-random in [-InitScale, InitScale]/√f, derived from
// FNV-64 hashes of (kind, id, dim): deterministic across runs and safe under
// concurrency without locks, unlike a shared rand.Source.
func (p Params) initVector(kind, id string) []float64 {
	if p.Factors <= 0 {
		// Degenerate config: zero factors has no components to initialize
		// (and Sqrt(0) below would make scale Inf), while a negative count
		// would panic in make. An empty vector is the only sane answer.
		return nil
	}
	v := make([]float64, p.Factors) // alloccheck: cold-start init of an unseen vector, not the warm path
	scale := p.InitScale / math.Sqrt(float64(p.Factors))
	h := fnv.New64a()
	h.Write([]byte(kind)) // alloccheck: cold-start hash seeding only
	h.Write([]byte{0})    // alloccheck: cold-start hash seeding only
	h.Write([]byte(id))   // alloccheck: cold-start hash seeding only
	base := h.Sum64()
	x := base
	for i := range v {
		// SplitMix64 finalizer over (base + dim) gives well-mixed bits.
		x = base + uint64(i)*0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		u := float64(z>>11) / float64(1<<53) // [0,1)
		v[i] = (2*u - 1) * scale
	}
	return v
}

// loadVector fetches and decodes the vector stored under the precomposed key
// through the cache (read-through; a nil cache goes straight to the store).
// The returned slice may be cache-shared: treat it as read-only. A cache hit
// returns without building the loader closure.
//
// hotpath: every scored request loads the user vector through here
func (m *Model) loadVector(ctx context.Context, kind, key, id string) ([]float64, bool, error) {
	if m.cache != nil {
		if tv, present, ok := m.cache.Lookup(key); ok {
			if !present {
				return nil, false, nil
			}
			return tv.([]float64), true, nil
		}
	}
	// alloccheck: one loader closure per read-through MISS; warm hits return above
	return objcache.Cached(m.cache, key, func() ([]float64, bool, error) {
		b, ok, err := m.store.Get(ctx, key)
		if err != nil {
			return nil, false, fmt.Errorf("core: load %s vector %s: %w", kind, id, err)
		}
		if !ok {
			return nil, false, nil
		}
		v, err := kvstore.DecodeFloats(b)
		if err != nil {
			return nil, false, fmt.Errorf("core: decode %s vector %s: %w", kind, id, err)
		}
		return v, true, nil
	})
}

// userState loads (or cold-start initializes) the user's vector and bias.
// The returned bool reports whether the user was new.
func (m *Model) userState(ctx context.Context, id string) ([]float64, float64, bool, error) {
	vec, ok, err := m.loadVector(ctx, "user", m.ukVec.Key(id), id)
	if err != nil {
		return nil, 0, false, err
	}
	if !ok {
		return m.params.initVector("u", id), 0, true, nil
	}
	bias, err := m.loadBias(ctx, m.ukBias.Key(id))
	if err != nil {
		return nil, 0, false, err
	}
	return vec, bias, false, nil
}

func (m *Model) itemState(ctx context.Context, id string) ([]float64, float64, bool, error) {
	ik := m.itemKeysFor(id)
	vec, ok, err := m.loadVector(ctx, "item", ik.vec, id)
	if err != nil {
		return nil, 0, false, err
	}
	if !ok {
		return m.params.initVector("i", id), 0, true, nil
	}
	bias, err := m.loadBias(ctx, ik.bias)
	if err != nil {
		return nil, 0, false, err
	}
	return vec, bias, false, nil
}

// loadBias fetches the bias stored under the precomposed key. A cache hit
// returns without building the loader closure.
//
// hotpath: every scored request loads the user bias through here
func (m *Model) loadBias(ctx context.Context, key string) (float64, error) {
	if m.cache != nil {
		if tv, present, ok := m.cache.Lookup(key); ok {
			if !present {
				return 0, nil
			}
			return tv.(float64), nil
		}
	}
	// alloccheck: one loader closure per read-through MISS; warm hits return above
	v, ok, err := objcache.Cached(m.cache, key, func() (float64, bool, error) {
		b, ok, err := m.store.Get(ctx, key)
		if err != nil {
			return 0, false, fmt.Errorf("core: load bias %s: %w", key, err)
		}
		if !ok {
			return 0, false, nil
		}
		f, err := kvstore.DecodeFloat(b)
		if err != nil {
			return 0, false, fmt.Errorf("core: decode bias %s: %w", key, err)
		}
		return f, true, nil
	})
	if err != nil || !ok {
		return 0, err
	}
	return v, nil
}

// Load fetches the current state for a (user, item) pair, initializing
// vectors for entities not yet seen. newUser/newItem report cold starts.
func (m *Model) Load(ctx context.Context, userID, itemID string) (s State, newUser, newItem bool, err error) {
	s.UserVec, s.UserBias, newUser, err = m.userState(ctx, userID)
	if err != nil {
		return State{}, false, false, err
	}
	s.ItemVec, s.ItemBias, newItem, err = m.itemState(ctx, itemID)
	if err != nil {
		return State{}, false, false, err
	}
	return s, newUser, newItem, nil
}

// StoreState persists a (user, item) state pair. Exposed for the MFStorage
// bolt, which receives freshly computed vectors from ComputeMF and owns all
// writes for its key partition.
func (m *Model) StoreState(ctx context.Context, userID, itemID string, s State) error {
	if err := m.StoreUser(ctx, userID, s.UserVec, s.UserBias); err != nil {
		return err
	}
	return m.StoreItem(ctx, itemID, s.ItemVec, s.ItemBias)
}

// StoreUser persists one user's vector and bias.
func (m *Model) StoreUser(ctx context.Context, id string, vec []float64, bias float64) error {
	if err := m.store.Set(ctx, kvstore.Key(m.nsUserVec, id), kvstore.EncodeFloats(vec)); err != nil {
		return fmt.Errorf("core: store user vector %s: %w", id, err)
	}
	if err := m.store.Set(ctx, kvstore.Key(m.nsUserBias, id), kvstore.EncodeFloat(bias)); err != nil {
		return fmt.Errorf("core: store user bias %s: %w", id, err)
	}
	return nil
}

// StoreItem persists one item's vector and bias. When quantized serving is
// enabled it additionally publishes the item's compact q8 record (write-
// through into the serving table), and it notifies the item-vector hook —
// the ANN index tracks the online model through exactly this call, whether
// the write came from Ingest or from a topology storage bolt.
func (m *Model) StoreItem(ctx context.Context, id string, vec []float64, bias float64) error {
	if err := m.store.Set(ctx, kvstore.Key(m.nsItemVec, id), kvstore.EncodeFloats(vec)); err != nil {
		return fmt.Errorf("core: store item vector %s: %w", id, err)
	}
	if err := m.store.Set(ctx, kvstore.Key(m.nsItemBias, id), kvstore.EncodeFloat(bias)); err != nil {
		return fmt.Errorf("core: store item bias %s: %w", id, err)
	}
	if m.quant != nil {
		if err := m.publishQ8(ctx, id, vec, bias); err != nil {
			return err
		}
	}
	if m.itemHook != nil {
		m.itemHook(id, vec)
	}
	return nil
}

// globalMean returns μ. When TrackGlobalMean is off it is 0, reducing Eq. 2
// to the bias-plus-interaction form. The computed ratio is cached under the
// record's key; every ObserveRating update invalidates it.
func (m *Model) globalMean(ctx context.Context) (float64, error) {
	if !m.params.TrackGlobalMean {
		return 0, nil
	}
	if m.cache != nil {
		if tv, present, ok := m.cache.Lookup(m.keyMean); ok {
			if !present {
				return 0, nil
			}
			return tv.(float64), nil
		}
	}
	// alloccheck: one loader closure per read-through MISS; warm hits return above
	mu, ok, err := objcache.Cached(m.cache, m.keyMean, func() (float64, bool, error) {
		b, ok, err := m.store.Get(ctx, m.keyMean)
		if err != nil {
			return 0, false, fmt.Errorf("core: load global mean: %w", err)
		}
		if !ok {
			return 0, false, nil
		}
		vals, err := kvstore.DecodeFloats(b)
		if err != nil || len(vals) != 2 {
			return 0, false, fmt.Errorf("core: corrupt global mean record: %v", err)
		}
		if vals[1] == 0 {
			return 0, true, nil
		}
		return vals[0] / vals[1], true, nil
	})
	if err != nil || !ok {
		return 0, err
	}
	return mu, nil
}

// ObserveRating folds one action's binary rating into the running global
// mean without touching any other parameter. ProcessAction calls it
// internally; the ComputeMF bolt calls it directly because it performs the
// load-step-emit cycle itself.
func (m *Model) ObserveRating(ctx context.Context, r float64) error {
	if !m.params.TrackGlobalMean {
		return nil
	}
	return m.store.Update(ctx, m.keyMean, func(cur []byte, ok bool) ([]byte, bool) {
		sum, n := 0.0, 0.0
		if ok {
			if vals, err := kvstore.DecodeFloats(cur); err == nil && len(vals) == 2 {
				sum, n = vals[0], vals[1]
			}
		}
		sum, n = sum+r, n+1
		return kvstore.EncodeFloats([]float64{sum, n}), true
	})
}

// GlobalMean returns the current μ (0 when tracking is disabled or nothing
// has been observed).
func (m *Model) GlobalMean(ctx context.Context) (float64, error) { return m.globalMean(ctx) }

// ProcessAction runs Algorithm 1 for one user action: compute r_ui and w_ui,
// skip if r_ui = 0, otherwise initialize any new entities, take one adjusted
// SGD step, and write the new state back to the store. It reports whether
// the model was updated.
func (m *Model) ProcessAction(ctx context.Context, a feedback.Action) (bool, error) {
	m.stats.Received.Add(1)
	rating, weight := m.params.Weights.Confidence(a)
	// μ tracks the mean of the ratings this rule actually regresses to
	// (binary for Binary/Combine, the confidence weight for Conf), so the
	// error term is centred identically across rules.
	observed := 0.0
	if rating > 0 {
		observed = m.params.TrainingRating(rating, weight)
	}
	if err := m.ObserveRating(ctx, observed); err != nil {
		return false, err
	}
	if rating == 0 {
		m.stats.Skipped.Add(1)
		return false, nil
	}
	s, newUser, newItem, err := m.Load(ctx, a.UserID, a.VideoID)
	if err != nil {
		return false, err
	}
	if newUser {
		m.stats.NewUsers.Add(1)
	}
	if newItem {
		m.stats.NewItems.Add(1)
	}
	mu, err := m.globalMean(ctx)
	if err != nil {
		return false, err
	}
	next := m.params.Step(s, mu, rating, weight)
	if !StateFinite(next) {
		// Online training has no second chance to undo a written NaN:
		// every later read would propagate it. Drop the update instead.
		m.stats.Diverged.Add(1)
		return false, nil
	}
	if err := m.StoreState(ctx, a.UserID, a.VideoID, next); err != nil {
		return false, err
	}
	m.stats.Trained.Add(1)
	return true, nil
}

// MaxParamMagnitude bounds any stored model parameter. Healthy online MF
// parameters live near the unit scale; values beyond this bound mean the
// optimization exploded, and even finite ones would overflow later inner
// products.
const MaxParamMagnitude = 1e8

// StateFinite reports whether every parameter in s is finite and within
// MaxParamMagnitude. The ComputeMF bolt applies the same check before
// emitting vectors for storage.
func StateFinite(s State) bool {
	ok := func(v float64) bool {
		return !math.IsNaN(v) && math.Abs(v) <= MaxParamMagnitude
	}
	if !ok(s.UserBias) || !ok(s.ItemBias) {
		return false
	}
	for _, v := range s.UserVec {
		if !ok(v) {
			return false
		}
	}
	for _, v := range s.ItemVec {
		if !ok(v) {
			return false
		}
	}
	return true
}

// Predict evaluates Eq. 2 for a (user, item) pair using stored state.
// Entities never seen before contribute their deterministic cold-start
// vectors, whose inner products are near zero — the prediction degrades to
// μ plus known biases, which is the desired cold-start behaviour.
func (m *Model) Predict(ctx context.Context, userID, itemID string) (float64, error) {
	s, _, _, err := m.Load(ctx, userID, itemID)
	if err != nil {
		return 0, err
	}
	mu, err := m.globalMean(ctx)
	if err != nil {
		return 0, err
	}
	return PredictState(s, mu), nil
}

// UserVector returns the user's latent vector and bias, reporting whether
// the user has been trained on (false ⇒ cold-start values).
func (m *Model) UserVector(ctx context.Context, id string) (vec []float64, bias float64, known bool, err error) {
	vec, bias, isNew, err := m.userState(ctx, id)
	return vec, bias, !isNew, err
}

// ItemVector returns the item's latent vector and bias, reporting whether
// the item has been trained on (false ⇒ cold-start values).
func (m *Model) ItemVector(ctx context.Context, id string) (vec []float64, bias float64, known bool, err error) {
	vec, bias, isNew, err := m.itemState(ctx, id)
	return vec, bias, !isNew, err
}

// ScoreCandidates evaluates Eq. 2 for one user against many candidate items
// with a single user-state load and a batched item fetch — the hot path of
// real-time recommendation generation (Fig. 1's "SORT&SELECT WITH User
// vector"). The result is parallel to items.
//
// With a cache attached, item vectors and biases are looked up first and only
// the misses go to the store, still in one MGet; a fully warm cache scores
// with zero store round trips. Without a cache, vectors and biases share one
// combined MGet and decode into a reused scratch buffer.
func (m *Model) ScoreCandidates(ctx context.Context, userID string, items []string) ([]float64, error) {
	uvec, ubias, _, err := m.userState(ctx, userID)
	if err != nil {
		return nil, err
	}
	mu, err := m.globalMean(ctx)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(items)) // alloccheck: the returned scores slice is the API contract, one per batch
	if m.cache != nil {
		return m.scoreCached(ctx, items, scores, uvec, ubias, mu)
	}
	keys := make([]string, 2*len(items)) // alloccheck: cacheless path; the warm path goes through scoreCached
	for i, id := range items {
		ik := m.itemKeysFor(id)
		keys[i] = ik.vec
		keys[len(items)+i] = ik.bias
	}
	vals, err := m.store.MGet(ctx, keys)
	if err != nil {
		return nil, fmt.Errorf("core: batch load item params: %w", err)
	}
	var scratch []float64 // decode target reused across items; consumed by Dot before the next decode
	for i, id := range items {
		var ivec []float64
		if vb := vals[i]; vb != nil {
			scratch, err = kvstore.DecodeFloatsInto(scratch, vb)
			if err != nil {
				return nil, fmt.Errorf("core: decode item vector %s: %w", id, err)
			}
			ivec = scratch
		} else {
			ivec = m.params.initVector("i", id)
		}
		var ibias float64
		if bb := vals[len(items)+i]; bb != nil {
			ibias, err = kvstore.DecodeFloat(bb)
			if err != nil {
				return nil, fmt.Errorf("core: decode item bias %s: %w", id, err)
			}
		}
		scores[i] = mu + ubias + ibias + vecmath.Dot(uvec, ivec)
	}
	return scores, nil
}

// scoreScratch is scoreCached's per-call working memory, recycled through
// Model.scorePool. vecs may briefly retain references to cached slices
// between requests; they are cleared on reuse.
type scoreScratch struct {
	vecs     [][]float64
	haveVec  []bool
	biases   []float64
	missKeys []string
	missVers []uint64
	missSlot []int
}

// sized returns the scratch arrays resized (and zeroed) for n items.
func (s *scoreScratch) sized(n int) (vecs [][]float64, haveVec []bool, biases []float64) {
	if cap(s.vecs) < n {
		s.vecs = make([][]float64, n) // alloccheck: grow-once; the pooled scratch is reused
		s.haveVec = make([]bool, n)   // alloccheck: grow-once; the pooled scratch is reused
		s.biases = make([]float64, n) // alloccheck: grow-once; the pooled scratch is reused
	} else {
		s.vecs = s.vecs[:n]
		s.haveVec = s.haveVec[:n]
		s.biases = s.biases[:n]
		clear(s.vecs)
		clear(s.haveVec)
		clear(s.biases)
	}
	return s.vecs, s.haveVec, s.biases
}

// scoreCached is the cache-aware half of ScoreCandidates: cache lookups
// first, then one MGet covering every missing vector and bias key. Miss slots
// record which (item, vector-or-bias) each fetched key fills; versions are
// captured before the fetch so a concurrent write can never install a stale
// decode (see objcache.StoreIfUnchanged).
func (m *Model) scoreCached(ctx context.Context, items []string, scores, uvec []float64, ubias, mu float64) ([]float64, error) {
	n := len(items)
	scr, _ := m.scorePool.Get().(*scoreScratch)
	if scr == nil {
		scr = &scoreScratch{} // alloccheck: pool miss, cold start only
	}
	defer m.scorePool.Put(scr)
	vecs, haveVec, biases := scr.sized(n) // haveVec: vector present in store (false ⇒ cold-start init)
	missKeys := scr.missKeys[:0]
	missVers := scr.missVers[:0]
	missSlot := scr.missSlot[:0] // item index *2, +1 when the key is the bias
	// alloccheck: non-escaping local closure over pooled scratch slices
	miss := func(key string, slot int) {
		missVers = append(missVers, m.cache.Version(key))
		missKeys = append(missKeys, key)
		missSlot = append(missSlot, slot)
	}
	for i, id := range items {
		ik := m.itemKeysFor(id)
		if v, present, ok := m.cache.Lookup(ik.vec); ok {
			if present {
				vecs[i] = v.([]float64)
				haveVec[i] = true
			}
		} else {
			miss(ik.vec, i*2)
		}
		if v, present, ok := m.cache.Lookup(ik.bias); ok {
			if present {
				biases[i] = v.(float64)
			}
		} else {
			miss(ik.bias, i*2+1)
		}
	}
	scr.missKeys, scr.missVers, scr.missSlot = missKeys[:0], missVers[:0], missSlot[:0]
	if len(missKeys) > 0 {
		vals, err := m.store.MGet(ctx, missKeys)
		if err != nil {
			return nil, fmt.Errorf("core: batch load item params: %w", err)
		}
		for j, b := range vals {
			i := missSlot[j] / 2
			if b == nil {
				m.cache.StoreIfUnchanged(missKeys[j], nil, false, missVers[j])
				continue
			}
			if missSlot[j]%2 == 0 {
				v, err := kvstore.DecodeFloats(b)
				if err != nil {
					return nil, fmt.Errorf("core: decode item vector %s: %w", items[i], err)
				}
				vecs[i] = v
				haveVec[i] = true
				m.cache.StoreIfUnchanged(missKeys[j], v, true, missVers[j]) // alloccheck: install boxes on the miss path only
			} else {
				v, err := kvstore.DecodeFloat(b)
				if err != nil {
					return nil, fmt.Errorf("core: decode item bias %s: %w", items[i], err)
				}
				biases[i] = v
				m.cache.StoreIfUnchanged(missKeys[j], v, true, missVers[j]) // alloccheck: install boxes on the miss path only
			}
		}
	}
	for i, id := range items {
		ivec := vecs[i]
		if !haveVec[i] {
			ivec = m.params.initVector("i", id)
		}
		scores[i] = mu + ubias + biases[i] + vecmath.Dot(uvec, ivec)
	}
	return scores, nil
}
