// Package core implements the paper's primary contribution: an online
// matrix-factorization collaborative-filtering model for implicit feedback
// with an adjustable single-step SGD updating strategy (§3, Algorithm 1).
//
// The model follows the biased MF formulation of Eq. 2,
//
//	r̂_ui = μ + b_u + b_i + x_uᵀ y_i,
//
// and updates all four components one user action at a time — no passes over
// a dataset, no convergence criterion — with a per-action learning rate
//
//	η_ui = η0 + α·w_ui          (Eq. 8)
//
// scaled by the action's confidence w_ui, so that high-confidence actions
// (long watches, comments) move the model more than noisy ones (bare
// clicks). Only actions with binary rating r_ui = 1 train the model;
// impressions never do (Algorithm 1 line 2).
//
// All model state lives in a kvstore.Store, exactly as in the paper's
// production deployment where Storm bolts share a distributed memory
// key-value store (§5.1). The update arithmetic itself is exposed as the
// pure function Params.Step so the ComputeMF bolt can compute new vectors
// and hand them to the MFStorage bolt for writing (Fig. 2).
package core

import (
	"fmt"

	"vidrec/internal/feedback"
)

// UpdateRule selects how an action's rating and confidence drive the SGD
// step. The three rules are exactly the ablation models of §6.1.2.
type UpdateRule uint8

const (
	// RuleCombine is the paper's ultimate model ("CombineModel"): binary
	// ratings, with the confidence level adjusting the learning rate via
	// Eq. 8.
	RuleCombine UpdateRule = iota
	// RuleBinary ("BinaryModel") uses binary ratings and ignores
	// confidence: the learning rate is the fixed η0 for every action.
	RuleBinary
	// RuleConfidence ("ConfModel") uses the confidence weight itself as
	// the rating (r_ui = w_ui) with a fixed learning rate — the naive
	// implicit-feedback treatment the paper shows is noise-sensitive.
	RuleConfidence
)

// String returns the paper's name for the rule.
func (r UpdateRule) String() string {
	switch r {
	case RuleCombine:
		return "CombineModel"
	case RuleBinary:
		return "BinaryModel"
	case RuleConfidence:
		return "ConfModel"
	default:
		return fmt.Sprintf("updaterule(%d)", uint8(r))
	}
}

// Params are the hyper-parameters of the online MF model (Table 2).
type Params struct {
	// Factors is the latent dimensionality f. The paper notes production
	// dimensionalities of 20–200; Table 2's grid search selects 40.
	Factors int
	// Lambda is the L2 regularization strength λ of Eq. 3.
	Lambda float64
	// Eta0 is the basic learning rate η0 of Eq. 8.
	Eta0 float64
	// Alpha scales the confidence contribution to the learning rate
	// (Eq. 8). Only RuleCombine uses it.
	Alpha float64
	// InitScale bounds the uniform initialization of new latent vectors;
	// each component is drawn deterministically from
	// [-InitScale, InitScale] / √f (see initVector).
	InitScale float64
	// Rule selects the update strategy (§6.1.2's three models).
	Rule UpdateRule
	// TrackGlobalMean, when set, maintains μ as the running mean of the
	// binary ratings of *all* received actions, impressions included.
	// Impressions still never touch b, x or y — they only inform the
	// global statistic, keeping μ in (0,1) rather than pinning it at 1 as
	// training exclusively on positives otherwise would.
	TrackGlobalMean bool
	// Weights configures the implicit-feedback confidence mapping.
	Weights feedback.Weights
}

// DefaultParams returns the hyper-parameters of Table 2. The paper's text
// pins f=40 and, via Table 1's [1.5, 2.5] PlayTime band, a=2.5 and b=1.0;
// the remaining values follow the paper's procedure — grid search on the
// workload (RunGridSearch reproduces it on the synthetic streams).
func DefaultParams() Params {
	return Params{
		Factors:         40,
		Lambda:          0.05,
		Eta0:            0.05,
		Alpha:           0.04,
		InitScale:       0.1,
		Rule:            RuleCombine,
		TrackGlobalMean: true,
		Weights:         feedback.DefaultWeights(),
	}
}

// Validate checks the parameters for self-consistency.
func (p Params) Validate() error {
	if p.Factors <= 0 {
		return fmt.Errorf("core: Factors must be positive, got %d", p.Factors)
	}
	if p.Lambda < 0 {
		return fmt.Errorf("core: Lambda must be non-negative, got %v", p.Lambda)
	}
	if p.Eta0 <= 0 {
		return fmt.Errorf("core: Eta0 must be positive, got %v", p.Eta0)
	}
	if p.Alpha < 0 {
		return fmt.Errorf("core: Alpha must be non-negative, got %v", p.Alpha)
	}
	if p.InitScale <= 0 {
		return fmt.Errorf("core: InitScale must be positive, got %v", p.InitScale)
	}
	if p.Rule > RuleConfidence {
		return fmt.Errorf("core: unknown update rule %d", p.Rule)
	}
	return p.Weights.Validate()
}

// LearningRate returns η_ui for an action with confidence weight w (Eq. 8).
// RuleBinary and RuleConfidence use the fixed η0.
func (p Params) LearningRate(weight float64) float64 {
	if p.Rule == RuleCombine {
		return p.Eta0 + p.Alpha*weight
	}
	return p.Eta0
}

// TrainingRating returns the rating value the SGD step regresses toward for
// an action with binary rating r and confidence w, per the active rule.
func (p Params) TrainingRating(rating, weight float64) float64 {
	if p.Rule == RuleConfidence {
		return weight
	}
	return rating
}
