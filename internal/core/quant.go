package core

import (
	"context"
	"fmt"
	"sync"

	"vidrec/internal/intern"
	"vidrec/internal/kvstore"
	"vidrec/internal/vecmath"
)

// Quantized serving support: alongside the float64 parameters, a model can
// publish each item's serving state as one compact record — quantization
// scale, bias, int8 vector (kvstore.EncodeQ8Vec) — and score candidates from
// a dense in-memory table of those records. The table is indexed by the
// shared intern slot, so the warm scoring loop is one RLock plus array reads
// and integer dot products: no per-item string hashing, no per-item cache
// lookups, and half the key traffic of the float path's vector + bias pair.
//
// Coherence follows the same single-writer discipline as objcache: StoreItem
// writes through to the table, and read-through installs are guarded by a
// version captured before the store fetch, so a racing publish can never be
// overwritten by a stale decode. The version is table-global rather than
// per-slot (a dense per-slot version array would double the table); under
// heavy concurrent training some read-through installs are skipped and simply
// re-resolve on the next request — correctness is unaffected.

// qRec is one item's resolved quantized serving state.
type qRec struct {
	ready bool
	scale float64
	bias  float64
	data  []int8
}

// quantTable is the dense slot-indexed record table.
type quantTable struct {
	it      *intern.Table
	mu      sync.RWMutex
	recs    []qRec // guarded by mu; indexed by intern slot
	version uint64 // guarded by mu; bumped on every write-through and flush
}

// snapshotVersion returns the current install guard.
func (t *quantTable) snapshotVersion() uint64 {
	t.mu.RLock()
	v := t.version
	t.mu.RUnlock()
	return v
}

// install writes one slot's record through unconditionally (the publish path:
// the writer owns the freshest value) and bumps the version.
func (t *quantTable) install(slot int32, rec qRec) {
	t.mu.Lock()
	t.growLocked(slot)
	t.recs[slot] = rec
	t.version++
	t.mu.Unlock()
}

// installIfUnchanged installs a read-through decode only if no write raced
// the fetch; a skipped install just re-resolves on the next request.
func (t *quantTable) installIfUnchanged(slot int32, rec qRec, version uint64) {
	t.mu.Lock()
	if t.version == version {
		t.growLocked(slot)
		t.recs[slot] = rec
	}
	t.mu.Unlock()
}

// growLocked extends the record table to cover slot. The caller holds mu.
func (t *quantTable) growLocked(slot int32) {
	for int(slot) >= len(t.recs) {
		t.recs = append(t.recs, qRec{}) // alloccheck: table growth is catalog-bounded, amortized over publishes
	}
}

// flush empties every slot, forcing re-resolution — the cold-cache drill.
func (t *quantTable) flush() {
	t.mu.Lock()
	clear(t.recs)
	t.version++
	t.mu.Unlock()
}

// EnableQuantized turns on quantize-on-publish and quantized scoring, with
// slots drawn from the shared interner. Wire it before traffic starts
// (NewSystem does); it is not safe to toggle under load.
func (m *Model) EnableQuantized(it *intern.Table) {
	if it == nil {
		return
	}
	m.quant = &quantTable{it: it} // alloccheck: once per model at wiring time, never per request
}

// Quantized reports whether the quantized serving path is enabled.
func (m *Model) Quantized() bool { return m.quant != nil }

// FlushQ8 empties the quantized record table (no-op when quantization is
// off), so the next scored batch re-resolves every item — the quantized
// analogue of flushing the decoded-value cache.
func (m *Model) FlushQ8() {
	if m.quant != nil {
		m.quant.flush()
	}
}

// SetItemVectorHook registers fn to observe every item vector the model
// stores — the ANN index's feed. StoreItem invokes it after a successful
// write with the id and the stored float vector; fn must not retain or
// mutate vec. Wire before traffic starts; not safe to swap under load.
func (m *Model) SetItemVectorHook(fn func(id string, vec []float64)) { m.itemHook = fn }

// publishQ8 writes one item's quantized record to the store and through to
// the table. Called by StoreItem with the freshly stored float parameters.
func (m *Model) publishQ8(ctx context.Context, id string, vec []float64, bias float64) error {
	q := vecmath.Quantize(vec) // alloccheck: publish path; the record retains the data
	if err := m.store.Set(ctx, m.itemKeysFor(id).q8, kvstore.EncodeQ8Vec(q.Scale, bias, q.Data)); err != nil {
		return fmt.Errorf("core: store item q8 record %s: %w", id, err)
	}
	m.quant.install(m.quant.it.Slot(id), qRec{ready: true, scale: q.Scale, bias: bias, data: q.Data})
	return nil
}

// q8Scratch is ScoreCandidatesQ8's pooled working memory.
type q8Scratch struct {
	qu     vecmath.QVec // the quantized user vector
	datas  [][]int8     // per item: quantized vector (nil while unresolved)
	dots   []int32      // DotQ8Batch output
	scales []float64
	biases []float64
	miss   []int // indices into the batch still unresolved after the RLock pass
	keys   []string
}

// sized resizes (and clears) the scratch for n items.
func (s *q8Scratch) sized(n int) {
	if cap(s.datas) < n {
		s.datas = make([][]int8, n)   // alloccheck: grow-once; the pooled scratch is reused
		s.scales = make([]float64, n) // alloccheck: grow-once; the pooled scratch is reused
		s.biases = make([]float64, n) // alloccheck: grow-once; the pooled scratch is reused
	} else {
		s.datas = s.datas[:n]
		s.scales = s.scales[:n]
		s.biases = s.biases[:n]
		clear(s.datas)
		clear(s.scales)
		clear(s.biases)
	}
}

// ScoreCandidatesQ8 evaluates Eq. 2 for one user against many candidates
// from the quantized record table: slots must be parallel to items (the
// serving path resolves them once per request through the shared interner).
// The scores are written into dst (reused when it has capacity) and returned.
//
// Items without a resolved record fall back in one batched pass: their q8
// records are fetched in a single MGet, items that predate quantized
// publishing are quantized from their cached float parameters, and items the
// store has never seen quantize their deterministic cold-start vectors — so
// after one resolution every path scores from the table. When quantization
// is disabled the call degrades to the exact float path.
//
// hotpath: the quantized scoring loop is the sub-10µs serving budget's core
func (m *Model) ScoreCandidatesQ8(ctx context.Context, userID string, items []string, slots []int32, dst []float64) ([]float64, error) {
	if m.quant == nil {
		// Float fallback: identical results to ScoreCandidates, copied into
		// dst to honour the reuse contract.
		scores, err := m.ScoreCandidates(ctx, userID, items)
		if err != nil {
			return nil, err
		}
		if cap(dst) < len(scores) {
			dst = make([]float64, len(scores)) // alloccheck: fallback only; the quantized path reuses dst
		} else {
			dst = dst[:len(scores)]
		}
		copy(dst, scores)
		return dst, nil
	}
	if len(slots) != len(items) {
		return nil, fmt.Errorf("core: %d slots for %d items", len(slots), len(items))
	}
	uvec, ubias, _, err := m.userState(ctx, userID)
	if err != nil {
		return nil, err
	}
	mu, err := m.globalMean(ctx)
	if err != nil {
		return nil, err
	}
	if cap(dst) < len(items) {
		dst = make([]float64, len(items)) // alloccheck: grow-once; callers pass pooled scratch
	} else {
		dst = dst[:len(items)]
	}
	scr, _ := m.q8Pool.Get().(*q8Scratch)
	if scr == nil {
		scr = &q8Scratch{} // alloccheck: pool miss, cold start only
	}
	defer m.q8Pool.Put(scr)
	scr.sized(len(items))
	scr.qu = vecmath.QuantizeInto(scr.qu, uvec)

	t := m.quant
	miss := scr.miss[:0]
	t.mu.RLock()
	for i, slot := range slots {
		if int(slot) < len(t.recs) {
			if rec := &t.recs[slot]; rec.ready {
				scr.datas[i] = rec.data
				scr.scales[i] = rec.scale
				scr.biases[i] = rec.bias
				continue
			}
		}
		miss = append(miss, i)
	}
	t.mu.RUnlock()
	scr.miss = miss[:0]

	if len(miss) > 0 {
		if err := m.resolveQ8(ctx, items, slots, miss, scr); err != nil {
			return nil, err
		}
	}

	scr.dots = vecmath.DotQ8Batch(scr.qu.Data, scr.datas, scr.dots)
	us := scr.qu.Scale
	for i := range items {
		dst[i] = mu + ubias + scr.biases[i] + float64(scr.dots[i])*us*scr.scales[i]
	}
	return dst, nil
}

// resolveQ8 fills the scratch rows listed in miss: one MGet over the q8
// records, float-parameter fallback for items published before quantization,
// deterministic cold-start quantization for unknown items. Every resolution
// is installed into the table under the pre-fetch version guard.
func (m *Model) resolveQ8(ctx context.Context, items []string, slots []int32, miss []int, scr *q8Scratch) error {
	version := m.quant.snapshotVersion()
	keys := scr.keys[:0]
	for _, i := range miss {
		keys = append(keys, m.itemKeysFor(items[i]).q8)
	}
	scr.keys = keys[:0]
	vals, err := m.store.MGet(ctx, keys)
	if err != nil {
		return fmt.Errorf("core: batch load q8 records: %w", err)
	}
	for j, i := range miss {
		var rec qRec
		if b := vals[j]; b != nil {
			scale, bias, data, err := kvstore.DecodeQ8VecInto(nil, b) // alloccheck: miss-path decode; the table retains the data
			if err != nil {
				return fmt.Errorf("core: decode q8 record %s: %w", items[i], err)
			}
			rec = qRec{ready: true, scale: scale, bias: bias, data: data}
		} else if rec, err = m.quantizeFromFloat(ctx, items[i]); err != nil {
			return err
		}
		scr.datas[i] = rec.data
		scr.scales[i] = rec.scale
		scr.biases[i] = rec.bias
		m.quant.installIfUnchanged(slots[i], rec, version)
	}
	return nil
}

// quantizeFromFloat builds an item's record from its float parameters — the
// bridge for state written before quantized publishing was enabled — or from
// its deterministic cold-start vector when the store has never seen it.
func (m *Model) quantizeFromFloat(ctx context.Context, id string) (qRec, error) {
	vec, bias, _, err := m.itemState(ctx, id)
	if err != nil {
		return qRec{}, err
	}
	q := vecmath.Quantize(vec) // alloccheck: miss-path quantization; the table retains the data
	return qRec{ready: true, scale: q.Scale, bias: bias, data: q.Data}, nil
}
