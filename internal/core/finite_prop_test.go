package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
)

// TestModelStateAlwaysFinite is the numeric-hygiene property test behind the
// "model state is always finite" invariant (DESIGN.md §6): 10k randomized
// SGD steps — including adversarial zero-length videos, zero and overlong
// view times, and every action type — must never leave a NaN, an Inf, or an
// out-of-band magnitude in any stored user/item vector or bias.
func TestModelStateAlwaysFinite(t *testing.T) {
	const steps = 10000
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	store := kvstore.NewLocal(16)
	p := testParams()
	p.Rule = RuleCombine
	m, err := NewModel("prop", store, p)
	if err != nil {
		t.Fatal(err)
	}

	types := feedback.ActionTypes()
	// Adversarial duration menu: zero, negative, tiny, huge, and the
	// overflow-adjacent extremes.
	durs := []time.Duration{
		0, -time.Second, time.Nanosecond, time.Millisecond,
		time.Second, time.Hour, 24 * 365 * time.Hour,
		time.Duration(math.MaxInt64), time.Duration(math.MinInt64),
	}
	base := time.Unix(1_457_308_800, 0) // 2016-03-07, the paper's era

	for i := 0; i < steps; i++ {
		a := feedback.Action{
			UserID:    fmt.Sprintf("u%03d", rng.Intn(50)),
			VideoID:   fmt.Sprintf("v%03d", rng.Intn(120)),
			Type:      types[rng.Intn(len(types))],
			Timestamp: base.Add(time.Duration(i) * time.Second),
		}
		if a.Type == feedback.PlayTime {
			a.ViewTime = durs[rng.Intn(len(durs))]
			a.VideoLength = durs[rng.Intn(len(durs))]
		}
		if _, err := m.ProcessAction(ctx, a); err != nil {
			t.Fatalf("step %d: ProcessAction(%+v): %v", i, a, err)
		}

		// Spot-check the hot pair every 500 steps so a corruption is
		// caught near the step that caused it, not 10k steps later.
		if i%500 == 0 {
			assertFinitePrediction(t, ctx, m, a.UserID, a.VideoID, i)
		}
	}

	// Full sweep: every parameter of every stored vector and bias.
	bad := 0
	store.ForEach(func(key string, val []byte) bool {
		ns, id, err := kvstore.SplitKey(key)
		if err != nil {
			t.Errorf("malformed key %q: %v", key, err)
			return true
		}
		switch ns {
		case "prop.uv", "prop.iv":
			vec, err := kvstore.DecodeFloats(val)
			if err != nil {
				t.Errorf("key %q: %v", key, err)
				return true
			}
			for j, x := range vec {
				if math.IsNaN(x) || math.Abs(x) > MaxParamMagnitude {
					t.Errorf("%s[%d] for %s = %v, not finite/bounded", ns, j, id, x)
					bad++
				}
			}
		case "prop.ub", "prop.ib":
			b, err := kvstore.DecodeFloat(val)
			if err != nil {
				t.Errorf("key %q: %v", key, err)
				return true
			}
			if math.IsNaN(b) || math.Abs(b) > MaxParamMagnitude {
				t.Errorf("bias %s for %s = %v, not finite/bounded", ns, id, b)
				bad++
			}
		}
		return bad < 20 // stop flooding the log if state is badly corrupt
	})

	if n := m.Stats().Diverged.Load(); n > 0 {
		// Divergence discards are legal (drop-don't-store), but with the
		// Eq. 6 clamp in place none of these inputs should trigger them.
		t.Errorf("Diverged = %d, want 0: adversarial vrates should be clamped before SGD", n)
	}
}

func assertFinitePrediction(t *testing.T, ctx context.Context, m *Model, user, item string, step int) {
	t.Helper()
	pred, err := m.Predict(ctx, user, item)
	if err != nil {
		t.Fatalf("step %d: Predict(%s,%s): %v", step, user, item, err)
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		t.Fatalf("step %d: Predict(%s,%s) = %v, not finite", step, user, item, pred)
	}
}
