package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/vecmath"
)

func testParams() Params {
	p := DefaultParams()
	p.Factors = 8 // keep unit tests fast
	return p
}

func newTestModel(t *testing.T, rule UpdateRule) *Model {
	t.Helper()
	p := testParams()
	p.Rule = rule
	m, err := NewModel("t", kvstore.NewLocal(8), p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func click(u, v string) feedback.Action {
	return feedback.Action{UserID: u, VideoID: v, Type: feedback.Click, Timestamp: time.Unix(1000, 0)}
}

func impress(u, v string) feedback.Action {
	return feedback.Action{UserID: u, VideoID: v, Type: feedback.Impress, Timestamp: time.Unix(1000, 0)}
}

func fullWatch(u, v string) feedback.Action {
	return feedback.Action{
		UserID: u, VideoID: v, Type: feedback.PlayTime,
		ViewTime: 100 * time.Second, VideoLength: 100 * time.Second,
		Timestamp: time.Unix(1000, 0),
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejectsBadValues(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Factors = 0 },
		func(p *Params) { p.Lambda = -1 },
		func(p *Params) { p.Eta0 = 0 },
		func(p *Params) { p.Alpha = -0.1 },
		func(p *Params) { p.InitScale = 0 },
		func(p *Params) { p.Rule = 99 },
		func(p *Params) { p.Weights.MinViewRate = -1 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

// TestLearningRateEquation8 pins η_ui = η0 + α·w_ui for CombineModel and the
// fixed rate for the ablations.
func TestLearningRateEquation8(t *testing.T) {
	p := testParams()
	p.Eta0, p.Alpha = 0.01, 0.005
	p.Rule = RuleCombine
	if got, want := p.LearningRate(4), 0.01+0.005*4; math.Abs(got-want) > 1e-15 {
		t.Errorf("combine rate = %v, want %v", got, want)
	}
	for _, rule := range []UpdateRule{RuleBinary, RuleConfidence} {
		p.Rule = rule
		if got := p.LearningRate(4); got != 0.01 {
			t.Errorf("%v rate = %v, want fixed 0.01", rule, got)
		}
	}
}

func TestTrainingRatingPerRule(t *testing.T) {
	p := testParams()
	p.Rule = RuleBinary
	if got := p.TrainingRating(1, 2.5); got != 1 {
		t.Errorf("binary target = %v, want 1", got)
	}
	p.Rule = RuleCombine
	if got := p.TrainingRating(1, 2.5); got != 1 {
		t.Errorf("combine target = %v, want 1", got)
	}
	p.Rule = RuleConfidence
	if got := p.TrainingRating(1, 2.5); got != 2.5 {
		t.Errorf("confidence target = %v, want 2.5", got)
	}
}

func TestRuleString(t *testing.T) {
	for rule, want := range map[UpdateRule]string{
		RuleCombine:    "CombineModel",
		RuleBinary:     "BinaryModel",
		RuleConfidence: "ConfModel",
	} {
		if rule.String() != want {
			t.Errorf("String(%d) = %q, want %q", rule, rule, want)
		}
	}
}

// TestStepMatchesAlgorithm1 verifies one step against a hand-computed
// reference of Algorithm 1 lines 9-14.
func TestStepMatchesAlgorithm1(t *testing.T) {
	p := testParams()
	p.Factors = 2
	p.Eta0, p.Alpha, p.Lambda = 0.1, 0.05, 0.02
	s := State{
		UserVec: []float64{0.5, -0.2}, UserBias: 0.1,
		ItemVec: []float64{0.3, 0.4}, ItemBias: -0.05,
	}
	const mu, rating, weight = 0.6, 1.0, 2.0
	eta := 0.1 + 0.05*weight
	e := rating - mu - s.UserBias - s.ItemBias - (0.5*0.3 + -0.2*0.4)
	wantUB := s.UserBias + eta*(e-0.02*s.UserBias)
	wantIB := s.ItemBias + eta*(e-0.02*s.ItemBias)
	wantUV := []float64{
		s.UserVec[0] + eta*(e*s.ItemVec[0]-0.02*s.UserVec[0]),
		s.UserVec[1] + eta*(e*s.ItemVec[1]-0.02*s.UserVec[1]),
	}
	wantIV := []float64{
		s.ItemVec[0] + eta*(e*s.UserVec[0]-0.02*s.ItemVec[0]),
		s.ItemVec[1] + eta*(e*s.UserVec[1]-0.02*s.ItemVec[1]),
	}
	got := p.Step(s, mu, rating, weight)
	if math.Abs(got.UserBias-wantUB) > 1e-12 || math.Abs(got.ItemBias-wantIB) > 1e-12 {
		t.Errorf("biases = %v,%v want %v,%v", got.UserBias, got.ItemBias, wantUB, wantIB)
	}
	for i := range wantUV {
		if math.Abs(got.UserVec[i]-wantUV[i]) > 1e-12 {
			t.Errorf("user vec[%d] = %v, want %v", i, got.UserVec[i], wantUV[i])
		}
		if math.Abs(got.ItemVec[i]-wantIV[i]) > 1e-12 {
			t.Errorf("item vec[%d] = %v, want %v", i, got.ItemVec[i], wantIV[i])
		}
	}
}

func TestStepIsPure(t *testing.T) {
	p := testParams()
	s := State{
		UserVec: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}, UserBias: 0.5,
		ItemVec: []float64{0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}, ItemBias: -0.5,
	}
	uvBefore := vecmath.Clone(s.UserVec)
	ivBefore := vecmath.Clone(s.ItemVec)
	p.Step(s, 0.5, 1, 2)
	for i := range uvBefore {
		if s.UserVec[i] != uvBefore[i] || s.ItemVec[i] != ivBefore[i] {
			t.Fatal("Step mutated its input state")
		}
	}
}

// TestStepReducesError: repeated steps on the same pair drive the prediction
// toward the target.
func TestStepReducesError(t *testing.T) {
	p := testParams()
	s := State{
		UserVec: p.initVector("u", "u1"),
		ItemVec: p.initVector("i", "v1"),
	}
	const mu, rating, weight = 0.0, 1.0, 2.5
	for i := 0; i < 200; i++ {
		s = p.Step(s, mu, rating, weight)
	}
	if got := PredictState(s, mu); math.Abs(rating-got) > 0.1 {
		t.Errorf("after 200 steps prediction = %v, want near %v", got, rating)
	}
}

// TestStepHigherConfidenceMovesMore: with RuleCombine, one step with a
// high-confidence action must change the prediction more than one with low
// confidence — the core claim of the adjustable updating strategy.
func TestStepHigherConfidenceMovesMore(t *testing.T) {
	p := testParams()
	p.Rule = RuleCombine
	base := State{
		UserVec: p.initVector("u", "u1"),
		ItemVec: p.initVector("i", "v1"),
	}
	before := PredictState(base, 0)
	low := PredictState(p.Step(base, 0, 1, 1.0), 0)
	high := PredictState(p.Step(base, 0, 1, 4.0), 0)
	if (high - before) <= (low - before) {
		t.Errorf("high-confidence step moved %v, low moved %v; want high > low",
			high-before, low-before)
	}
}

func TestInitVectorDeterministicAndBounded(t *testing.T) {
	p := testParams()
	a := p.initVector("u", "user-1")
	b := p.initVector("u", "user-1")
	c := p.initVector("u", "user-2")
	d := p.initVector("i", "user-1") // same id, different kind
	if len(a) != p.Factors {
		t.Fatalf("len = %d, want %d", len(a), p.Factors)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("initVector not deterministic")
		}
		if a[i] != c[i] || a[i] != d[i] {
			same = false
		}
	}
	if same {
		t.Error("different ids/kinds produced identical vectors")
	}
	bound := p.InitScale / math.Sqrt(float64(p.Factors))
	for i, v := range a {
		if math.Abs(v) > bound {
			t.Errorf("component %d = %v exceeds bound %v", i, v, bound)
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	store := kvstore.NewLocal(1)
	if _, err := NewModel("", store, testParams()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewModel("m", nil, testParams()); err == nil {
		t.Error("nil store accepted")
	}
	bad := testParams()
	bad.Factors = 0
	if _, err := NewModel("m", store, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestProcessActionSkipsImpressions(t *testing.T) {
	m := newTestModel(t, RuleCombine)
	updated, err := m.ProcessAction(context.Background(), impress("u1", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if updated {
		t.Error("impression updated the model (Alg. 1 line 2 violated)")
	}
	if _, _, known, _ := m.UserVector(context.Background(), "u1"); known {
		t.Error("impression created persistent user state")
	}
	snap := m.Stats()
	if snap.Received.Load() != 1 || snap.Skipped.Load() != 1 || snap.Trained.Load() != 0 {
		t.Errorf("stats = received %d skipped %d trained %d",
			snap.Received.Load(), snap.Skipped.Load(), snap.Trained.Load())
	}
}

func TestProcessActionTrainsOnPositive(t *testing.T) {
	m := newTestModel(t, RuleCombine)
	updated, err := m.ProcessAction(context.Background(), click("u1", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("click did not update the model")
	}
	if _, _, known, _ := m.UserVector(context.Background(), "u1"); !known {
		t.Error("trained user not persisted")
	}
	if _, _, known, _ := m.ItemVector(context.Background(), "v1"); !known {
		t.Error("trained item not persisted")
	}
	if m.Stats().NewUsers.Load() != 1 || m.Stats().NewItems.Load() != 1 {
		t.Errorf("cold-start counters = %d users, %d items, want 1,1",
			m.Stats().NewUsers.Load(), m.Stats().NewItems.Load())
	}
	// Second action on the same pair is not a cold start.
	m.ProcessAction(context.Background(), click("u1", "v1"))
	if m.Stats().NewUsers.Load() != 1 {
		t.Error("existing user counted as new")
	}
}

// TestTrainingRaisesPreference: the end-to-end property of Algorithm 1 —
// repeatedly interacting with a video raises its predicted preference above
// an untouched one.
func TestTrainingRaisesPreference(t *testing.T) {
	m := newTestModel(t, RuleCombine)
	// A realistic stream mixes positives with impressions; the impressions
	// keep the global mean below 1 so the positive updates have signal to
	// push against (with positives only, every rating is 1 and μ=1 makes
	// the model trivially converged).
	for i := 0; i < 50; i++ {
		if _, err := m.ProcessAction(context.Background(), fullWatch("u1", "liked")); err != nil {
			t.Fatal(err)
		}
		m.ProcessAction(context.Background(), impress("u1", fmt.Sprintf("shown-%d", i)))
		m.ProcessAction(context.Background(), impress("u1", "untouched"))
	}
	liked, err := m.Predict(context.Background(), "u1", "liked")
	if err != nil {
		t.Fatal(err)
	}
	other, err := m.Predict(context.Background(), "u1", "untouched")
	if err != nil {
		t.Fatal(err)
	}
	if liked <= other {
		t.Errorf("Predict(liked) = %v not above Predict(untouched) = %v", liked, other)
	}
}

func TestGlobalMeanTracksImpressions(t *testing.T) {
	m := newTestModel(t, RuleCombine)
	m.ProcessAction(context.Background(), click("u1", "v1"))   // rating 1
	m.ProcessAction(context.Background(), impress("u1", "v2")) // rating 0
	m.ProcessAction(context.Background(), impress("u1", "v3")) // rating 0
	mu, err := m.GlobalMean(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-1.0/3.0) > 1e-12 {
		t.Errorf("global mean = %v, want 1/3", mu)
	}
}

func TestGlobalMeanDisabled(t *testing.T) {
	p := testParams()
	p.TrackGlobalMean = false
	m, _ := NewModel("t", kvstore.NewLocal(1), p)
	m.ProcessAction(context.Background(), click("u1", "v1"))
	if mu, _ := m.GlobalMean(context.Background()); mu != 0 {
		t.Errorf("global mean with tracking off = %v, want 0", mu)
	}
}

func TestModelPersistsAcrossReattach(t *testing.T) {
	store := kvstore.NewLocal(4)
	p := testParams()
	m1, _ := NewModel("shared", store, p)
	for i := 0; i < 20; i++ {
		m1.ProcessAction(context.Background(), fullWatch("u1", "v1"))
	}
	want, _ := m1.Predict(context.Background(), "u1", "v1")

	m2, _ := NewModel("shared", store, p)
	got, err := m2.Predict(context.Background(), "u1", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("reattached model predicts %v, want %v", got, want)
	}
}

func TestModelsAreNamespaced(t *testing.T) {
	store := kvstore.NewLocal(4)
	p := testParams()
	a, _ := NewModel("a", store, p)
	b, _ := NewModel("b", store, p)
	for i := 0; i < 10; i++ {
		a.ProcessAction(context.Background(), fullWatch("u1", "v1"))
	}
	if _, _, known, _ := b.UserVector(context.Background(), "u1"); known {
		t.Error("model b sees model a's user state")
	}
}

func TestScoreCandidatesMatchesPredict(t *testing.T) {
	m := newTestModel(t, RuleCombine)
	for i := 0; i < 10; i++ {
		m.ProcessAction(context.Background(), fullWatch("u1", "v1"))
		m.ProcessAction(context.Background(), click("u1", "v2"))
	}
	items := []string{"v1", "v2", "never-seen"}
	scores, err := m.ScoreCandidates(context.Background(), "u1", items)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range items {
		want, _ := m.Predict(context.Background(), "u1", id)
		if math.Abs(scores[i]-want) > 1e-12 {
			t.Errorf("ScoreCandidates[%s] = %v, Predict = %v", id, scores[i], want)
		}
	}
}

// TestCombineConvergesFasterThanBinary: with equal η0, the adjustable rule
// reaches a given prediction level on high-confidence actions in fewer steps.
func TestCombineConvergesFasterThanBinary(t *testing.T) {
	run := func(rule UpdateRule) float64 {
		p := testParams()
		p.Rule = rule
		m, _ := NewModel("t", kvstore.NewLocal(4), p)
		for i := 0; i < 20; i++ {
			m.ProcessAction(context.Background(), fullWatch("u1", "v1"))
		}
		pred, _ := m.Predict(context.Background(), "u1", "v1")
		return pred
	}
	if combine, binary := run(RuleCombine), run(RuleBinary); combine <= binary {
		t.Errorf("after equal steps combine pred %v <= binary pred %v", combine, binary)
	}
}

func TestModelAccessors(t *testing.T) {
	m := newTestModel(t, RuleCombine)
	if m.Name() != "t" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Params().Factors != 8 {
		t.Errorf("Params.Factors = %d", m.Params().Factors)
	}
}

// TestModelSurfacesStoreErrors drives every store-touching path against a
// fully failing store: each must return the error, never panic or fabricate
// state.
func TestModelSurfacesStoreErrors(t *testing.T) {
	faulty := kvstore.NewFaulty(kvstore.NewLocal(4), 3)
	m, err := NewModel("t", faulty, testParams())
	if err != nil {
		t.Fatal(err)
	}
	m.ProcessAction(context.Background(), click("u1", "v1")) // healthy warmup
	faulty.SetFailRate(1)

	if _, err := m.ProcessAction(context.Background(), click("u1", "v1")); err == nil {
		t.Error("ProcessAction swallowed store failure")
	}
	if _, err := m.Predict(context.Background(), "u1", "v1"); err == nil {
		t.Error("Predict swallowed store failure")
	}
	if _, _, _, err := m.UserVector(context.Background(), "u1"); err == nil {
		t.Error("UserVector swallowed store failure")
	}
	if _, _, _, err := m.ItemVector(context.Background(), "v1"); err == nil {
		t.Error("ItemVector swallowed store failure")
	}
	if _, _, _, err := m.Load(context.Background(), "u1", "v1"); err == nil {
		t.Error("Load swallowed store failure")
	}
	if err := m.StoreUser(context.Background(), "u1", make([]float64, 8), 0); err == nil {
		t.Error("StoreUser swallowed store failure")
	}
	if err := m.StoreItem(context.Background(), "v1", make([]float64, 8), 0); err == nil {
		t.Error("StoreItem swallowed store failure")
	}
	if _, err := m.ScoreCandidates(context.Background(), "u1", []string{"v1"}); err == nil {
		t.Error("ScoreCandidates swallowed store failure")
	}
	if _, err := m.GlobalMean(context.Background()); err == nil {
		t.Error("GlobalMean swallowed store failure")
	}
}

// TestModelRejectsCorruptStoreRecords: garbage bytes under a model key must
// error, not decode into nonsense.
func TestModelRejectsCorruptStoreRecords(t *testing.T) {
	kv := kvstore.NewLocal(4)
	m, _ := NewModel("t", kv, testParams())
	m.ProcessAction(context.Background(), click("u1", "v1"))
	kv.Set(context.Background(), "t.uv:u1", []byte{1, 2, 3}) // not a multiple of 8
	if _, _, _, err := m.UserVector(context.Background(), "u1"); err == nil {
		t.Error("corrupt user vector decoded without error")
	}
	kv.Set(context.Background(), "t.ib:v1", []byte{1}) // not 8 bytes
	if _, _, _, err := m.ItemVector(context.Background(), "v1"); err == nil {
		t.Error("corrupt item bias decoded without error")
	}
}

// TestLoadStoreStateRoundTrip: the ComputeMF/MFStorage split (load on one
// worker, store on another) must reproduce state exactly.
func TestLoadStoreStateRoundTrip(t *testing.T) {
	m := newTestModel(t, RuleCombine)
	for i := 0; i < 10; i++ {
		m.ProcessAction(context.Background(), fullWatch("u1", "v1"))
	}
	s, newUser, newItem, err := m.Load(context.Background(), "u1", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if newUser || newItem {
		t.Fatal("trained entities reported as new")
	}
	// Store under different ids, reload, compare exactly.
	if err := m.StoreState(context.Background(), "u2", "v2", s); err != nil {
		t.Fatal(err)
	}
	s2, newUser, newItem, err := m.Load(context.Background(), "u2", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if newUser || newItem {
		t.Fatal("copied entities reported as new")
	}
	if s2.UserBias != s.UserBias || s2.ItemBias != s.ItemBias {
		t.Errorf("biases differ after round trip")
	}
	for i := range s.UserVec {
		if s2.UserVec[i] != s.UserVec[i] || s2.ItemVec[i] != s.ItemVec[i] {
			t.Fatal("vectors differ after round trip")
		}
	}
	// PredictState over loaded state must equal Predict.
	mu, _ := m.GlobalMean(context.Background())
	if got, want := PredictState(s2, mu), mustPredict(t, m, "u2", "v2"); math.Abs(got-want) > 1e-12 {
		t.Errorf("PredictState = %v, Predict = %v", got, want)
	}
}

func mustPredict(t *testing.T, m *Model, u, v string) float64 {
	t.Helper()
	p, err := m.Predict(context.Background(), u, v)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDivergenceGuard: a hostile learning rate must not write NaN into the
// store; the update is dropped and counted instead.
func TestDivergenceGuard(t *testing.T) {
	p := testParams()
	p.Eta0 = 1e300 // guaranteed overflow within a few steps
	p.Alpha = 0
	m, err := NewModel("t", kvstore.NewLocal(4), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.ProcessAction(context.Background(), fullWatch("u1", "v1")); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Diverged.Load() == 0 {
		t.Fatal("no diverged updates counted under an overflowing rate")
	}
	vec, bias, _, err := m.UserVector(context.Background(), "u1")
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.IsFinite(vec) || math.IsNaN(bias) || math.IsInf(bias, 0) {
		t.Error("non-finite state reached the store despite the guard")
	}
	if pred, _ := m.Predict(context.Background(), "u1", "v1"); math.IsNaN(pred) || math.IsInf(pred, 0) {
		t.Errorf("prediction non-finite: %v", pred)
	}
}

func TestStateFinite(t *testing.T) {
	good := State{UserVec: []float64{1}, ItemVec: []float64{2}}
	if !StateFinite(good) {
		t.Error("finite state reported non-finite")
	}
	for _, bad := range []State{
		{UserVec: []float64{math.NaN()}, ItemVec: []float64{0}},
		{UserVec: []float64{0}, ItemVec: []float64{math.Inf(1)}},
		{UserVec: []float64{0}, ItemVec: []float64{0}, UserBias: math.NaN()},
		{UserVec: []float64{0}, ItemVec: []float64{0}, ItemBias: math.Inf(-1)},
	} {
		if StateFinite(bad) {
			t.Errorf("non-finite state %v reported finite", bad)
		}
	}
}

// TestStateStaysFinite property-checks that arbitrary bounded action
// sequences never blow the state up to NaN/Inf under default rates.
func TestStateStaysFinite(t *testing.T) {
	f := func(actions []uint8) bool {
		m := newTestModel(t, RuleCombine)
		types := []feedback.ActionType{feedback.Click, feedback.Play, feedback.Comment, feedback.Share}
		for _, raw := range actions {
			a := feedback.Action{
				UserID:  fmt.Sprintf("u%d", raw%4),
				VideoID: fmt.Sprintf("v%d", (raw>>2)%8),
				Type:    types[(raw>>5)%4],
			}
			if _, err := m.ProcessAction(context.Background(), a); err != nil {
				return false
			}
		}
		vec, bias, _, err := m.UserVector(context.Background(), "u0")
		if err != nil {
			return false
		}
		return vecmath.IsFinite(vec) && !math.IsNaN(bias)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
