// Demographic example: demonstrate the paper's two production optimizations
// (§5.2) — demographic training (per-group models over denser matrices) and
// demographic filtering (per-group hot lists for diversity and cold starts).
//
// Run with:
//
//	go run ./examples/demographic
package main

import (
	"fmt"
	"log"

	"vidrec/internal/dataset"
	"vidrec/internal/eval"
	"vidrec/internal/experiments"
)

func main() {
	scale := experiments.SmallScale()
	c, err := experiments.Prepare(scale)
	if err != nil {
		log.Fatal(err)
	}

	// Per-group matrices are denser than the global one — the premise of
	// demographic training (Table 4).
	global := dataset.ComputeStats(c.Train, c.Test)
	fmt.Printf("global matrix:   %5d users  %4d videos  sparsity %.2f%%\n",
		global.Users, global.Videos, global.Sparsity*100)
	trainByGroup := dataset.GroupBy(c.Train, c.Data.GroupOf)
	testByGroup := dataset.GroupBy(c.Test, c.Data.GroupOf)
	groups := dataset.LargestGroups(trainByGroup, 3)
	for _, g := range groups {
		st := dataset.ComputeStats(trainByGroup[g], testByGroup[g])
		fmt.Printf("group %-12s %5d users  %4d videos  sparsity %.2f%%\n",
			g, st.Users, st.Videos, st.Sparsity*100)
	}

	// Demographic training: a model trained inside the largest group vs
	// the global model, both evaluated on that group's test users.
	g := groups[0]
	globalModel, err := experiments.TrainModel("global", 0, scale.Dataset.Factors, c.Train)
	if err != nil {
		log.Fatal(err)
	}
	groupModel, err := experiments.TrainModel("group", 0, scale.Dataset.Factors, trainByGroup[g])
	if err != nil {
		log.Fatal(err)
	}
	w := globalModel.Params().Weights
	ts := eval.BuildTestSet(testByGroup[g], w)

	globalMetrics, err := eval.Evaluate(
		experiments.NewModelRecommender(globalModel, c.Train, w), ts, scale.TopN)
	if err != nil {
		log.Fatal(err)
	}
	groupMetrics, err := eval.Evaluate(
		experiments.NewModelRecommender(groupModel, trainByGroup[g], w), ts, scale.TopN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndemographic training on %s (%d test users):\n", g, groupMetrics.UsersEvaluated)
	fmt.Printf("  global model: recall@%d %.4f  avgrank %.4f\n",
		scale.TopN, globalMetrics.Recall, globalMetrics.AvgRank)
	fmt.Printf("  group model:  recall@%d %.4f  avgrank %.4f\n",
		scale.TopN, groupMetrics.Recall, groupMetrics.AvgRank)
	if globalMetrics.Recall > 0 {
		fmt.Printf("  recall lift: %+.1f%%\n",
			(groupMetrics.Recall-globalMetrics.Recall)/globalMetrics.Recall*100)
	}
}
