// A/B test example: rerun the paper's online comparison (§6.2, Figure 7) at
// a small scale — four methods (Hot, AR, SimHash, rMF) serving disjoint
// traffic buckets over several simulated days, with CTR recorded daily.
//
// Run with:
//
//	go run ./examples/abtest
package main

import (
	"fmt"
	"log"

	"vidrec/internal/experiments"
)

func main() {
	scale := experiments.SmallScale()
	const days = 5

	fmt.Printf("running %d-day A/B simulation (4 variants, %d users, %d videos)...\n\n",
		days, scale.Dataset.Users, scale.Dataset.Videos)
	res, err := experiments.RunFig7(scale, days)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	table5 := experiments.Table5Result{Fig7: res}
	fmt.Println(table5.Render())

	rep := res.Report
	fmt.Println("shape check (paper §6.2): rMF wins \"in most cases\" — at the top,")
	fmt.Println("clear of AR, far clear of Hot (short runs can tie it with SimHash;")
	fmt.Println("the 10-day run in EXPERIMENTS.md separates them):")
	for _, name := range rep.Variants {
		fmt.Printf("  %-8s overall CTR %.4f\n", name, rep.Total[name].CTR())
	}
}
