// Topology example: run the paper's Figure 2 Storm topology end to end —
// spout, ComputeMF/MFStorage, UserHistory, GetItemPairs/ItemPairSim/
// ResultStorage — over a generated action stream, then query the live state
// it built.
//
// Run with:
//
//	go run ./examples/topology
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/demographic"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/topology"
)

func main() {
	// Example binary: the process lifetime is the context.
	ctx := context.Background()

	// A two-day synthetic workload standing in for the production stream.
	cfg := dataset.DefaultConfig()
	cfg.Users = 400
	cfg.Videos = 150
	cfg.Days = 2
	cfg.EventsPerDay = 6000
	d, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	actions := d.AllActions()

	sys, err := recommend.NewSystem(kvstore.NewLocal(64), core.DefaultParams(),
		simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := d.FillCatalog(ctx, sys.Catalog); err != nil {
		log.Fatal(err)
	}
	if err := d.FillProfiles(ctx, sys.Profiles); err != nil {
		log.Fatal(err)
	}

	// Build Figure 2 with per-bolt parallelism and stream the workload.
	par := topology.DefaultParallelism()
	topo, err := topology.Build(sys, func(int) topology.Source {
		return topology.SliceSource(actions)
	}, par)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := topo.Run(ctx); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("processed %d actions in %v (%.0f actions/s)\n\n",
		len(actions), elapsed.Round(time.Millisecond),
		float64(len(actions))/elapsed.Seconds())

	fmt.Println("component metrics:")
	for _, name := range topo.Components() {
		m, _ := topo.MetricsFor(name)
		fmt.Printf("  %-14s emitted=%-7d executed=%-7d failed=%d\n",
			name, m.Emitted, m.Executed, m.Failed)
	}

	// Query the state the topology built: a similar-video table...
	now := actions[len(actions)-1].Timestamp
	tables, _ := sys.Tables.For(demographic.GlobalGroup)
	video := d.Videos()[0].Meta.ID
	similar, err := tables.Similar(ctx, video, 5, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimilar videos for %s:\n", video)
	for i, e := range similar {
		fmt.Printf("  %d. %s sim=%.4f\n", i+1, e.ID, e.Score)
	}

	// ...and a live recommendation.
	sys.SetClock(func() time.Time { return now })
	user := d.Users()[0].ID
	res, err := sys.Recommend(ctx, recommend.Request{UserID: user, N: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommendations for %s (%d candidates, %v):\n",
		user, res.Candidates, res.Latency)
	for i, e := range res.Videos {
		fmt.Printf("  %d. %s score=%.4f\n", i+1, e.ID, e.Score)
	}
}
