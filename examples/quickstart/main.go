// Quickstart: assemble the recommendation system, feed it a handful of user
// actions, and ask for recommendations in both of the paper's scenarios —
// "related videos" (watching something right now) and "guess you like"
// (history-seeded).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

func main() {
	// Example binary: the process lifetime is the context.
	ctx := context.Background()

	// 1. One shared key-value store holds all pipeline state (§5.1).
	kv := kvstore.NewLocal(16)

	// 2. Assemble the system: online MF model (Algorithm 1), similar-video
	// tables (Eq. 9-12), histories, demographic hot lists.
	sys, err := recommend.NewSystem(kv, core.DefaultParams(), simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Register a tiny catalog: ids, fine-grained types, lengths.
	for _, v := range []catalog.Video{
		{ID: "kungfu-1", Type: "movie.action", Length: 95 * time.Minute},
		{ID: "kungfu-2", Type: "movie.action", Length: 102 * time.Minute},
		{ID: "kungfu-3", Type: "movie.action", Length: 88 * time.Minute},
		{ID: "news-1", Type: "news.daily", Length: 12 * time.Minute},
		{ID: "cooking-1", Type: "life.cooking", Length: 25 * time.Minute},
	} {
		if err := sys.Catalog.Put(ctx, v); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Stream user actions. Each Ingest performs one single-step model
	// update — the model is usable immediately after every action.
	base := time.Now().Add(-2 * time.Hour)
	watch := func(user, video string, minutes int, at time.Duration) feedback.Action {
		length := 95 * time.Minute
		return feedback.Action{
			UserID: user, VideoID: video, Type: feedback.PlayTime,
			ViewTime: time.Duration(minutes) * time.Minute, VideoLength: length,
			Timestamp: base.Add(at),
		}
	}
	actions := []feedback.Action{
		// Action-movie fans co-watch the kungfu series.
		watch("alice", "kungfu-1", 90, 0),
		watch("alice", "kungfu-2", 95, 10*time.Minute),
		watch("bob", "kungfu-1", 85, 20*time.Minute),
		watch("bob", "kungfu-3", 80, 30*time.Minute),
		watch("carol", "kungfu-2", 90, 40*time.Minute),
		watch("carol", "kungfu-3", 85, 50*time.Minute),
		// Dave is into the news.
		watch("dave", "news-1", 11, 60*time.Minute),
	}
	for _, a := range actions {
		if err := sys.Ingest(ctx, a); err != nil {
			log.Fatal(err)
		}
	}

	// 5a. "Related videos": erin is watching kungfu-1 right now.
	res, err := sys.Recommend(ctx, recommend.Request{UserID: "erin", CurrentVideo: "kungfu-1", N: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("related to kungfu-1 (for erin, watching now):")
	for i, e := range res.Videos {
		fmt.Printf("  %d. %-10s score=%.4f\n", i+1, e.ID, e.Score)
	}
	fmt.Printf("  [%d candidates, %d hot-merged, served in %v]\n\n",
		res.Candidates, res.HotMerged, res.Latency)

	// 5b. "Guess you like": alice opens the site; her history seeds the
	// expansion.
	res, err = sys.Recommend(ctx, recommend.Request{UserID: "alice", N: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("guess-you-like for alice (history-seeded):")
	for i, e := range res.Videos {
		fmt.Printf("  %d. %-10s score=%.4f\n", i+1, e.ID, e.Score)
	}

	// 5c. A brand-new user falls back to the hot list (§5.2.1).
	res, err = sys.Recommend(ctx, recommend.Request{UserID: "stranger", N: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncold-start list for a brand-new user (demographic filtering):")
	for i, e := range res.Videos {
		fmt.Printf("  %d. %-10s score=%.4f\n", i+1, e.ID, e.Score)
	}
}
