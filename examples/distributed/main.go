// Distributed example: run the pipeline in the paper's actual deployment
// shape — all model state in a *remote* key-value service (§5.1's
// distributed memory-based storage), with the Figure 2 topology's workers
// talking to it over TCP. Here the "remote" store is a server in the same
// process, but every byte of state crosses a real network socket.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/topology"
)

func main() {
	// Example binary: the process lifetime is the context.
	ctx := context.Background()

	// 1. The storage tier: a TCP key-value server (cmd/kvserver runs the
	// same thing standalone).
	backing := kvstore.NewLocal(64)
	server, err := kvstore.NewServer(ctx, backing, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	fmt.Printf("kvstore serving on %s\n", server.Addr())

	// 2. The compute tier dials in; every read and write below crosses
	// the socket.
	client, err := kvstore.DialContext(ctx, server.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	sys, err := recommend.NewSystem(client, core.DefaultParams(),
		simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. A day of synthetic traffic through the topology.
	cfg := dataset.DefaultConfig()
	cfg.Users = 200
	cfg.Videos = 80
	cfg.Days = 1
	cfg.EventsPerDay = 2500
	d, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.FillCatalog(ctx, sys.Catalog); err != nil {
		log.Fatal(err)
	}
	if err := d.FillProfiles(ctx, sys.Profiles); err != nil {
		log.Fatal(err)
	}
	actions := d.AllActions()

	topo, err := topology.Build(sys, func(int) topology.Source {
		return topology.SliceSource(actions)
	}, topology.DefaultParallelism())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := topo.Run(ctx); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	keys, _ := backing.Len(ctx)
	snap := backing.Stats().Snapshot()
	fmt.Printf("processed %d actions in %v (%.0f actions/s over TCP)\n",
		len(actions), elapsed.Round(time.Millisecond),
		float64(len(actions))/elapsed.Seconds())
	fmt.Printf("server-side state: %d keys, %d gets (hit rate %.2f), %d sets\n",
		keys, snap.Gets, snap.HitRate(), snap.Sets)

	// 4. Serve a recommendation — also entirely against the remote store.
	now := actions[len(actions)-1].Timestamp
	sys.SetClock(func() time.Time { return now })
	user := d.Users()[0].ID
	res, err := sys.Recommend(ctx, recommend.Request{UserID: user, N: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommendations for %s (served in %v over TCP):\n", user, res.Latency)
	for i, e := range res.Videos {
		fmt.Printf("  %d. %s score=%.4f\n", i+1, e.ID, e.Score)
	}
}
