module vidrec

go 1.22
