GO ?= go

.PHONY: build test race vet fmt lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race tier is a standing requirement: the topology, acker, and kvstore
# are exercised concurrently by their tests, so this catches real interleaving
# bugs, not just annotation drift. -count=1 defeats the test cache on purpose.
race:
	$(GO) test -race -count=1 ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# vidlint is the repo's own analyzer (internal/lint): lockcheck, atomiccheck,
# errcheck, goroutinecheck. Zero findings is the merge bar.
lint:
	$(GO) run ./cmd/vidlint ./...

check: build vet fmt lint test
