GO ?= go

.PHONY: build test race vet fmt lint lint-baseline lint-stats test-sim test-resilience fuzz bench bench-gate cover check

# Accepted pre-existing findings (pass<TAB>file<TAB>message). Kept empty when
# the tree is clean; `make lint-baseline` regenerates it after a new pass
# lands with a backlog.
LINT_BASELINE ?= .vidlint-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race tier is a standing requirement: the topology, acker, and kvstore
# are exercised concurrently by their tests, so this catches real interleaving
# bugs, not just annotation drift. -count=1 defeats the test cache on purpose.
race:
	$(GO) test -race -count=1 ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# vidlint is the repo's own analyzer (internal/lint): the per-function passes
# (lockcheck, atomiccheck, errcheck, goroutinecheck, clockcheck), the
# call-graph dataflow suite (lockorder, numcheck, ctxcheck), the
# serving-budget suite (alloccheck, leakcheck), and the flowcheck CFG suite
# (nilcheck, wirecheck, blockcheck). Zero NEW findings is the merge bar: the
# baseline suppresses only entries recorded in $(LINT_BASELINE), which is
# empty on a clean tree, and stale entries fail the run until pruned.
lint:
	$(GO) run ./cmd/vidlint -baseline $(LINT_BASELINE) ./...

# Per-pass discipline dashboard: findings that survived the baseline, entries
# the baseline suppressed, and inline escape hatches in the tree. Run by
# `make check` so discipline drift (a creeping hatch count, a baseline that
# should have shrunk) is visible on every gate.
lint-stats:
	$(GO) run ./cmd/vidlint -baseline $(LINT_BASELINE) -stats ./...

# Regenerate the suppression file from the current tree. Use only when a new
# pass lands with a known backlog; shrinking the file back to empty is the
# follow-up work.
lint-baseline:
	$(GO) run ./cmd/vidlint -write-baseline $(LINT_BASELINE) ./...

# The deterministic end-to-end simulation tier (internal/sim): the full
# scenario matrix — transports, KV/bolt fault schedules, load shapes — under
# the race detector, including the replay-determinism byte-identical-state
# check. -count=1 so a digest regression can never hide behind the cache.
test-sim:
	$(GO) test -race -count=1 ./internal/sim/

# The failover tier: the resilient storage stack's own tests — replication
# (write-all/read-first-healthy), retry/backoff (exact seeded delays),
# breaker state machine (every transition on an injected clock), and the
# client redial regression — under the race detector, -count=1 so timing-
# sensitive state machines can never hide behind the test cache. The sim
# tier's replica-failover / breaker-trip-recover / degraded-serving
# scenarios exercise the same stack end to end.
test-resilience:
	$(GO) test -race -count=1 ./internal/kvstore -run 'Resilient|Replicated|Breaker|Backoff|Redial'

# Fuzz smoke: each target briefly, as a regression gate over the committed
# seeds plus a short exploration budget. Long exploratory runs are manual
# (raise FUZZTIME).
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/kvstore -run '^$$' -fuzz '^FuzzDecodeEntries$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -run '^$$' -fuzz '^FuzzDecodeStrings$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -run '^$$' -fuzz '^FuzzDecodeFloats$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -run '^$$' -fuzz '^FuzzNetRequestFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -run '^$$' -fuzz '^FuzzDecodeQ8Vec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -run '^$$' -fuzz '^FuzzDecodeShardMap$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -run '^$$' -fuzz '^FuzzDecodeStateSync$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/feedback -run '^$$' -fuzz '^FuzzWeight$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/bandit -run '^$$' -fuzz '^FuzzRewardCodec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/bandit -run '^$$' -fuzz '^FuzzRewardEvent$$' -fuzztime $(FUZZTIME)

# Serving-latency benchmark tier: the BenchmarkRecommend matrix (embedded vs
# networked vs replicated vs sharded store × cold vs warm object cache, plus
# the PR9 serving fast-path variants score=q8 and ann=on on the local store)
# with allocation stats, recorded to BENCH_PR10.json via cmd/benchjson. The
# baseline field of the JSON is preserved across runs; compare against it
# before claiming a serving-path change is an improvement (the warm-cache
# fast path must stay within 10%). BENCHTIME trades precision for wall-clock
# time.
BENCHTIME ?= 200x
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkRecommend$$' -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out BENCH_PR10.json

# Benchmark regression gate: re-run the Recommend matrix into a scratch file
# and compare it three ways — against the committed BENCH_PR5.json record
# (the pre-PR9 float matrix: the historic warm-path gate keeps holding),
# against BENCH_PR9.json (the fast-path matrix, with -require proving the q8
# and ANN columns actually ran instead of silently vanishing), and against
# BENCH_PR10.json (the full matrix including the sharded column, -require
# proving the partitioned tier ran). The PR5 compare fails on any benchmark
# more than 10% slower on ns/op; the PR9/PR10 self-compares allow 75%
# because their records are quiet-window references for microsecond-scale
# ops — the same binary drifts 50%+ run to run on a busy shared box, while
# a real regression (losing the q8 kernel, say) costs 170%+, so the loose
# ns/op bound still catches catastrophe and the real day-to-day signal
# there is the allocs/op bound. All compares fail on allocs/op growth
# beyond 0.5%: exact on the pinned single-digit warm budgets (AllocsPerRun
# pins + alloccheck — 0.5% of 3 rounds to zero), with just enough slack for
# the ±1 wobble of the hundreds-of-allocs cold paths. The fresh side runs
# -count=3 and benchjson -compare takes the best of the repeats, which
# keeps scheduler noise from tripping the ns/op bound. Not part of
# `make check` (benchmark timing still wants a quiet machine); run it
# before claiming a serving-path change is safe.
BENCH_GATE_SCRATCH ?= /tmp/vidrec-bench-gate.json
bench-gate:
	@rm -f $(BENCH_GATE_SCRATCH)
	$(GO) test -run '^$$' -bench '^BenchmarkRecommend$$' -benchmem -benchtime $(BENCHTIME) -count=3 . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_GATE_SCRATCH)
	$(GO) run ./cmd/benchjson -compare BENCH_PR5.json $(BENCH_GATE_SCRATCH) -max-regress 10
	$(GO) run ./cmd/benchjson -compare BENCH_PR9.json $(BENCH_GATE_SCRATCH) -max-regress 75 -require score=q8,ann=on
	$(GO) run ./cmd/benchjson -compare BENCH_PR10.json $(BENCH_GATE_SCRATCH) -max-regress 75 -require store=sharded

# Coverage floors: internal/lint is the merge bar for everything else, and
# internal/bandit decides what users see — both must hold >= 85% statement
# coverage. Each package's coverage line is checked individually; the awk
# exit keeps the gate self-contained (no tooling beyond go test).
#
# The sharded tier gets its own floor: whole-package kvstore coverage would
# let untested sharding code hide behind the mature codec/net/resilience
# tests, so the gate recomputes statement coverage from the profile over
# just the PR10 files (shardmap, statesync, shardgroup, sharded) and holds
# them to the same >= 85%.
COVER_FLOOR ?= 85
SHARD_COVER_PROFILE ?= /tmp/vidrec-shard-cover.out
cover:
	@$(GO) test -cover ./internal/lint ./internal/bandit -count=1 | awk -v floor=$(COVER_FLOOR) ' \
		{ print } \
		/coverage:/ { pct = $$5; gsub(/%.*/, "", pct); \
			if (pct + 0 < floor + 0) { bad = 1; low = $$2 " " pct "%" } } \
		END { if (bad) { \
			printf "coverage %s is below the %d%% floor\n", low, floor; exit 1 } }'
	@$(GO) test -coverprofile=$(SHARD_COVER_PROFILE) -count=1 ./internal/kvstore >/dev/null
	@awk -v floor=$(COVER_FLOOR) ' \
		$$1 ~ /internal\/kvstore\/(shardmap|statesync|shardgroup|sharded)\.go:/ { \
			total += $$2; if ($$3 + 0 > 0) covered += $$2 } \
		END { if (total == 0) { \
				print "cover: no sharding statements in profile"; exit 1 } \
			pct = 100 * covered / total; \
			printf "coverage: internal/kvstore sharding files %.1f%% of statements\n", pct; \
			if (pct < floor + 0) { \
				printf "sharding coverage %.1f%% is below the %d%% floor\n", pct, floor; exit 1 } }' \
		$(SHARD_COVER_PROFILE)

check: build vet fmt lint lint-stats cover test race test-sim test-resilience fuzz
